"""Adaptive overload control: limiter, budgets, brownout, hedging.

The unit tests drive :mod:`repro.serve.adaptive` on fake clocks so
every AIMD transition is a deterministic replay; the service tests pin
fault schedules with explicit :class:`FaultPlan`s, exactly like
``test_serve_service.py``.
"""

import random
import threading
import time

import pytest

from repro.bench.runner import GridPoint
from repro.machine.spec import IVY_DESKTOP
from repro.resilience.faults import FaultPlan, FaultSpec, inject_faults
from repro.resilience.retry import RetryPolicy
from repro.schedules import Variant
from repro.serve import (
    AdaptiveConfig,
    AdaptiveLimiter,
    JobService,
    JobSpec,
    LatencyTracker,
    RetryBudget,
)

DOMAIN = (32, 32, 32)


def point(threads=1, box=16, engine="estimate", ncomp=5):
    return GridPoint(
        Variant("series"), IVY_DESKTOP, threads, box, DOMAIN,
        ncomp=ncomp, engine=engine,
    )


def quiet():
    """An empty fault plan: shields the test from ambient fault seeds."""
    return inject_faults(FaultPlan([]))


def wait_until(cond, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


class TestLatencyTracker:
    def test_cold_kind_reports_none(self):
        lt = LatencyTracker(min_samples=3)
        lt.observe("estimate", 0.01)
        lt.observe("estimate", 0.01)
        assert lt.ewma_s("estimate") is None
        assert lt.p95_s("estimate") is None
        lt.observe("estimate", 0.01)
        assert lt.ewma_s("estimate") == pytest.approx(0.01)

    def test_ewma_tracks_recent_samples(self):
        lt = LatencyTracker(min_samples=1, alpha=0.5)
        for _ in range(20):
            lt.observe("simulate", 0.001)
        for _ in range(20):
            lt.observe("simulate", 0.1)
        assert lt.ewma_s("simulate") > 0.05

    def test_p95_sits_in_the_tail(self):
        lt = LatencyTracker(window=64, min_samples=1)
        for _ in range(19):
            lt.observe("grid", 0.001)
        lt.observe("grid", 1.0)
        p95 = lt.p95_s("grid")
        assert p95 == pytest.approx(1.0)

    def test_kinds_are_independent(self):
        lt = LatencyTracker(min_samples=1)
        lt.observe("estimate", 0.001)
        assert lt.ewma_s("simulate") is None
        assert lt.samples("estimate") == 1
        snap = lt.snapshot()
        assert set(snap) == {"estimate"}
        assert snap["estimate"]["samples"] == 1


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def tick(self, dt=1.0):
        self.now += dt


class TestAdaptiveLimiter:
    def saturated(self, lim):
        """Acquire until the limiter refuses; returns the slot count."""
        held = 0
        while lim.inflight < lim.limit and lim.acquire(timeout=0):
            held += 1
        return held

    def test_acquire_blocks_at_limit_and_release_wakes(self):
        lim = AdaptiveLimiter(max_limit=2)
        assert lim.acquire(timeout=0)
        assert lim.acquire(timeout=0)
        assert not lim.acquire(timeout=0.01)
        lim.release()
        assert lim.acquire(timeout=0)
        lim.release(), lim.release()
        assert lim.inflight == 0

    def test_breach_backs_off_multiplicatively_to_floor(self):
        clock = FakeClock()
        lim = AdaptiveLimiter(
            max_limit=8, min_limit=2, decrease=0.5, cooldown_s=0.1,
            clock=clock,
        )
        clock.tick()
        lim.on_result(1.0, ok=False, breach=True)
        assert lim.limit == 4
        clock.tick()
        lim.on_result(1.0, ok=False, breach=True)
        assert lim.limit == 2
        clock.tick()
        lim.on_result(1.0, ok=False, breach=True)
        assert lim.limit == 2  # hard floor
        assert lim.backoffs == 3

    def test_cooldown_coalesces_a_burst_into_one_backoff(self):
        clock = FakeClock()
        lim = AdaptiveLimiter(max_limit=8, cooldown_s=10.0, clock=clock)
        clock.tick()
        lim.on_result(1.0, ok=False, breach=True)
        lim.on_result(1.0, ok=False, breach=True)
        lim.on_result(1.0, ok=False, breach=True)
        assert lim.backoffs == 1
        assert lim.limit == 4

    def test_probe_up_requires_saturation(self):
        clock = FakeClock()
        lim = AdaptiveLimiter(max_limit=8, min_limit=1, clock=clock)
        clock.tick()
        lim.on_result(1.0, ok=False, breach=True)  # limit -> 4
        assert lim.limit == 4
        # Unsaturated successes do not probe.
        lim.on_result(0.001, ok=True, breach=False)
        assert lim.probes == 0
        # Saturated successes do.
        held = self.saturated(lim)
        assert held == 4
        lim.on_result(0.001, ok=True, breach=False)
        assert lim.probes == 1
        assert lim.limit_raw > 4.0
        for _ in range(held):
            lim.release()

    def test_recovers_to_ceiling_under_sustained_success(self):
        clock = FakeClock()
        lim = AdaptiveLimiter(max_limit=6, clock=clock)
        clock.tick()
        lim.on_result(1.0, ok=False, breach=True)
        for _ in range(200):
            clock.tick()
            held = self.saturated(lim)
            lim.on_result(0.001, ok=True, breach=False)
            for _ in range(held):
                lim.release()
        assert lim.limit == 6

    def test_on_shed_backs_off_and_on_change_mirrors(self):
        clock = FakeClock()
        seen = []
        lim = AdaptiveLimiter(
            max_limit=8, clock=clock, on_change=seen.append
        )
        clock.tick()
        lim.on_shed()
        assert lim.limit == 4
        assert seen == [4.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveLimiter(max_limit=0)
        with pytest.raises(ValueError):
            AdaptiveLimiter(max_limit=2, min_limit=4)


class TestRetryBudget:
    def test_deposit_banks_ratio_and_caps(self):
        b = RetryBudget(ratio=0.5, cap=1.0)
        for _ in range(10):
            b.deposit()
        assert b.tokens() == pytest.approx(1.0)  # capped
        assert b.units == 10

    def test_spend_denied_below_one_token(self):
        b = RetryBudget(ratio=0.4)
        b.deposit()
        assert not b.try_spend()
        assert b.denied == 1
        b.deposit()
        b.deposit()  # 1.2 tokens banked
        assert b.try_spend()
        assert not b.try_spend()
        assert b.spent == 1 and b.denied == 2

    def test_amplification_bound_over_seeded_stream(self):
        rng = random.Random(2014)
        b = RetryBudget(ratio=0.3, cap=4.0)
        for _ in range(500):
            if rng.random() < 0.7:
                b.deposit()
            else:
                b.try_spend()
            assert b.tokens() >= 0.0
            assert b.amplification_bound_ok()
        assert b.units + b.spent <= b.units * 1.3 + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(cap=0.0)


class TestAdaptiveConfigValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(min_limit=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(max_limit=1, min_limit=2)
        with pytest.raises(ValueError):
            AdaptiveConfig(decrease=1.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(increase=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(retry_budget_ratio=-1.0)

    def test_slo_per_kind_override(self):
        cfg = AdaptiveConfig(slo_ms=100.0, slo_by_kind={"grid": 2000.0})
        assert cfg.slo_s("estimate") == pytest.approx(0.1)
        assert cfg.slo_s("grid") == pytest.approx(2.0)


class TestServiceAdaptive:
    def test_limiter_gauges_and_stats_published(self):
        cfg = AdaptiveConfig(slo_ms=10_000.0)
        with quiet(), JobService(workers=2, adaptive=cfg) as svc:
            for i in range(4):
                out = svc.submit(
                    JobSpec("estimate", point(ncomp=5 + i))
                ).result(timeout=30.0)
                assert out.status == "ok"
            stats = svc.stats()
        ad = stats["adaptive"]
        assert ad["limiter"]["max_limit"] == 2
        assert 1 <= ad["limiter"]["limit"] <= 2
        assert ad["latency"]["estimate"]["samples"] == 4
        assert ad["attempts"] == 4
        assert ad["attempt_units"] == 4
        assert ad["amplification_ok"]

    def test_slo_breach_backs_the_limit_off(self):
        cfg = AdaptiveConfig(slo_ms=0.0001, cooldown_s=0.0)
        with quiet(), JobService(workers=4, adaptive=cfg) as svc:
            for i in range(8):
                svc.submit(JobSpec("estimate", point(ncomp=5 + i))).result(
                    timeout=30.0
                )
            stats = svc.stats()
        lim = stats["adaptive"]["limiter"]
        assert lim["backoffs"] >= 1
        assert lim["limit"] == 1

    def test_brownout_sheds_an_unmeetable_deadline_at_admission(self):
        cfg = AdaptiveConfig(slo_ms=10_000.0, min_samples=2, brownout=True)
        with quiet(), JobService(workers=1, adaptive=cfg) as svc:
            for i in range(3):
                svc.submit(JobSpec("estimate", point(ncomp=5 + i))).result(
                    timeout=30.0
                )
            out = svc.submit(JobSpec(
                "estimate", point(ncomp=30), deadline_s=1e-7,
            )).result(timeout=30.0)
            stats = svc.stats()
        assert out.status == "shed"
        assert out.value.reason == "brownout"
        assert stats["shed_reasons"].get("brownout") == 1
        assert stats["accounted"]

    def test_brownout_disabled_admits_the_same_job(self):
        cfg = AdaptiveConfig(slo_ms=10_000.0, min_samples=2, brownout=False)
        with quiet(), JobService(workers=1, adaptive=cfg) as svc:
            for i in range(3):
                svc.submit(JobSpec("estimate", point(ncomp=5 + i))).result(
                    timeout=30.0
                )
            out = svc.submit(JobSpec(
                "estimate", point(ncomp=30), deadline_s=1e-7,
            )).result(timeout=30.0)
        # The job is admitted; it can only die *after* admission.
        assert not (
            out.status == "shed" and out.value.reason == "brownout"
        )

    def test_retry_budget_denial_is_breaker_exempt(self):
        plan = FaultPlan([
            FaultSpec(scope="serve", mode="raise", label="rb|", count=2),
        ])
        cfg = AdaptiveConfig(slo_ms=10_000.0, retry_budget_ratio=0.0)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.001, max_delay_s=0.002
        )
        with inject_faults(plan), JobService(
            workers=1, adaptive=cfg, retry_policy=policy,
        ) as svc:
            out = svc.submit(
                JobSpec("estimate", point(), label="rb")
            ).result(timeout=30.0)
            stats = svc.stats()
        assert out.status == "failed"
        assert out.reason == "retry_budget"
        rb = stats["adaptive"]["retry_budgets"]["ivy_desktop:estimate"]
        assert rb["denied"] >= 1 and rb["spent"] == 0
        # Budget exhaustion is a load signal, not an engine fault.
        br = stats["breakers"]["ivy_desktop:estimate"]
        assert br["state"] == "closed"
        assert br["consecutive_failures"] == 0
        assert stats["accounted"]

    def test_retry_budget_allows_funded_retries(self):
        plan = FaultPlan([
            FaultSpec(scope="serve", mode="raise", label="ok|", count=1),
        ])
        cfg = AdaptiveConfig(slo_ms=10_000.0, retry_budget_ratio=1.0)
        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.001, max_delay_s=0.002
        )
        with inject_faults(plan), JobService(
            workers=1, adaptive=cfg, retry_policy=policy,
        ) as svc:
            out = svc.submit(
                JobSpec("estimate", point(), label="ok")
            ).result(timeout=30.0)
            stats = svc.stats()
        assert out.status == "ok"
        rb = stats["adaptive"]["retry_budgets"]["ivy_desktop:estimate"]
        assert rb["spent"] == 1
        assert stats["adaptive"]["amplification_ok"]


class TestEvictToAdmit:
    def test_higher_priority_displaces_lowest(self):
        plan = FaultPlan([
            FaultSpec(
                scope="serve", mode="stall", label="plug|", stall_s=0.3,
                count=1,
            ),
        ])
        with inject_faults(plan), JobService(
            workers=1, queue_limit=2, evict_to_admit=True,
        ) as svc:
            plug = svc.submit(JobSpec("estimate", point(), label="plug"))
            # Wait for the worker to pick the plug up, then fill the queue.
            assert wait_until(lambda: len(svc._queue) == 0, timeout=2.0)
            low = [
                svc.submit(JobSpec(
                    "estimate", point(ncomp=6 + i), priority=0,
                    label=f"low{i}",
                ))
                for i in range(2)
            ]
            assert wait_until(lambda: len(svc._queue) == 2, timeout=2.0)
            high = svc.submit(JobSpec(
                "estimate", point(ncomp=9), priority=5, label="high",
            ))
            outs = [t.result(timeout=30.0) for t in (plug, *low, high)]
            stats = svc.stats()
        assert outs[0].status == "ok"
        assert outs[3].status == "ok"  # the high-priority job ran
        evicted = [o for o in outs[1:3] if o.status == "shed"]
        assert len(evicted) == 1
        assert evicted[0].value.reason == "evicted"
        assert stats["queue"]["evictions"] == 1
        assert stats["shed_reasons"].get("evicted") == 1
        assert stats["accounted"]

    def test_equal_priority_is_never_displaced(self):
        plan = FaultPlan([
            FaultSpec(
                scope="serve", mode="stall", label="plug|", stall_s=0.3,
                count=1,
            ),
        ])
        with inject_faults(plan), JobService(
            workers=1, queue_limit=1, evict_to_admit=True,
        ) as svc:
            plug = svc.submit(JobSpec("estimate", point(), label="plug"))
            assert wait_until(lambda: len(svc._queue) == 0, timeout=2.0)
            first = svc.submit(JobSpec(
                "estimate", point(ncomp=6), priority=1, label="first",
            ))
            peer = svc.submit(JobSpec(
                "estimate", point(ncomp=7), priority=1, label="peer",
            ))
            outs = [t.result(timeout=30.0) for t in (plug, first, peer)]
            stats = svc.stats()
        assert outs[1].status == "ok"
        assert outs[2].status == "shed"
        assert outs[2].value.reason == "queue_full"
        assert stats["queue"]["evictions"] == 0


def hedging_service(extra_faults=(), **cfg_kw):
    """A hedging-armed service plus the stall plan for one leader."""
    kw = dict(
        slo_ms=10_000.0, min_samples=2, hedge=True, hedge_factor=1.0,
        hedge_min_samples=2, retry_budget_ratio=1.0, brownout=False,
    )
    kw.update(cfg_kw)
    cfg = AdaptiveConfig(**kw)
    plan = FaultPlan([
        FaultSpec(
            scope="serve", mode="stall", label="lead|", stall_s=0.4,
            count=1,
        ),
        *extra_faults,
    ])
    svc = JobService(
        workers=2, adaptive=cfg, supervise_interval_s=0.01,
        hang_timeout_s=30.0,
    )
    return svc, plan


def warm(svc, n=4):
    for i in range(n):
        out = svc.submit(
            JobSpec("estimate", point(ncomp=10 + i), label=f"warm{i}")
        ).result(timeout=30.0)
        assert out.status == "ok"


class TestHedging:
    def test_hedge_rescues_a_stalled_leader(self):
        svc, plan = hedging_service()
        with inject_faults(plan), svc:
            warm(svc)
            t0 = time.monotonic()
            out = svc.submit(
                JobSpec("estimate", point(), label="lead")
            ).result(timeout=30.0)
            elapsed = time.monotonic() - t0
            # The loser is cancelled and accounted asynchronously.
            assert wait_until(
                lambda: svc.hedges["won"] + svc.hedges["lost"]
                >= svc.hedges["launched"]
            )
            stats = svc.stats()
        assert out.status == "ok"
        assert elapsed < 0.35  # settled by the hedge, not the 0.4s stall
        hg = stats["adaptive"]["hedges"]
        assert hg["launched"] == 1
        assert hg["won"] + hg["lost"] == hg["launched"]
        assert hg["won"] == 1
        assert stats["coalesce"]["max_live_per_key"] <= 2
        assert stats["adaptive"]["amplification_ok"]
        assert stats["accounted"]

    def test_hedge_launch_respects_the_retry_budget(self):
        svc, plan = hedging_service(retry_budget_ratio=0.0)
        with inject_faults(plan), svc:
            warm(svc)
            out = svc.submit(
                JobSpec("estimate", point(), label="lead")
            ).result(timeout=30.0)
            stats = svc.stats()
        assert out.status == "ok"  # the stall completes normally
        hg = stats["adaptive"]["hedges"]
        assert hg["launched"] == 0
        assert hg["denied"] >= 1
        assert stats["accounted"]

    def test_cold_service_never_hedges(self):
        svc, plan = hedging_service(hedge_min_samples=50)
        with inject_faults(plan), svc:
            warm(svc)
            out = svc.submit(
                JobSpec("estimate", point(), label="lead")
            ).result(timeout=30.0)
            stats = svc.stats()
        assert out.status == "ok"
        assert stats["adaptive"]["hedges"]["launched"] == 0


class TestSingleFlightHedgeStress:
    def test_two_thread_fanout_never_exceeds_two_live(self):
        """Satellite stress: hedging + coalescing from two submitters.

        Two threads hammer the same canonical key while some leaders
        stall long enough to hedge; whatever the interleaving, at most
        leader + hedge are ever live for the key, every ticket settles
        exactly once, and the hedge ledger closes.
        """
        stalls = [
            FaultSpec(
                scope="serve", mode="stall", label=f"st{i}|",
                stall_s=0.15, count=1,
            )
            for i in range(4)
        ]
        svc, plan = hedging_service(extra_faults=stalls)
        rounds = 6
        outs = [[], []]

        def submitter(slot):
            for r in range(rounds):
                # Same point every round -> same canonical key; the
                # round-robin labels arm a stall on some leaders.
                t = svc.submit(JobSpec(
                    "estimate", point(), label=f"st{(r + slot) % 8}",
                ))
                outs[slot].append(t.result(timeout=30.0))

        with inject_faults(plan), svc:
            warm(svc)
            threads = [
                threading.Thread(target=submitter, args=(s,))
                for s in (0, 1)
            ]
            for th in threads:
                th.start()
            for th in threads:
                th.join(timeout=60.0)
                assert not th.is_alive()
            assert wait_until(
                lambda: svc.hedges["won"] + svc.hedges["lost"]
                >= svc.hedges["launched"]
            )
            stats = svc.stats()
        settled = outs[0] + outs[1]
        assert len(settled) == 2 * rounds
        assert all(
            o.status in ("ok", "coalesced", "degraded") for o in settled
        )
        counts = stats["counts"]
        assert counts["submitted"] == 2 * rounds + 4  # + warm-up
        assert stats["accounted"]
        assert stats["coalesce"]["max_live_per_key"] <= 2
        hg = stats["adaptive"]["hedges"]
        assert hg["launched"] == hg["won"] + hg["lost"]
        assert stats["adaptive"]["amplification_ok"]

    def test_waiter_deadline_sweep_unaffected_by_live_hedge(self):
        """Expiring coalesced waiters must not disturb a live hedge race.

        The leader and its hedge both stall past the waiters' deadline:
        the sweep sheds the waiters as ``deadline`` while the hedge is
        live, and the leader still settles through whichever racer
        finishes — with exact accounting throughout.
        """
        hedge_stall = FaultSpec(
            scope="serve", mode="stall", label="~hedge|", stall_s=0.4,
            count=1,
        )
        svc, plan = hedging_service(extra_faults=[hedge_stall])
        with inject_faults(plan), svc:
            warm(svc)
            leader = svc.submit(JobSpec(
                "estimate", point(), label="lead", deadline_s=30.0,
            ))
            assert wait_until(
                lambda: svc.stats()["adaptive"]["hedges"]["launched"] == 1,
                timeout=5.0,
            )
            waiters = [
                svc.submit(JobSpec(
                    "estimate", point(), label=f"wait{i}", deadline_s=0.05,
                ))
                for i in range(3)
            ]
            wouts = [w.result(timeout=30.0) for w in waiters]
            lead_out = leader.result(timeout=30.0)
            assert wait_until(
                lambda: svc.hedges["won"] + svc.hedges["lost"]
                >= svc.hedges["launched"]
            )
            stats = svc.stats()
        assert lead_out.status == "ok"
        assert all(w.status == "shed" for w in wouts)
        assert all(w.value.reason == "deadline" for w in wouts)
        hg = stats["adaptive"]["hedges"]
        assert hg["launched"] == 1
        assert hg["won"] + hg["lost"] == 1
        assert stats["coalesce"]["max_live_per_key"] <= 2
        assert stats["accounted"]
