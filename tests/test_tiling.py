"""Tests of tile grids and wavefront ordering."""

import pytest

from repro.box import Box
from repro.schedules import TileGrid, wavefront_schedule_depth


class TestTileGrid:
    def test_even_decomposition(self):
        g = TileGrid(Box.cube(16, 3), 8)
        assert len(g) == 8
        assert g.counts == (2, 2, 2)
        assert all(t.size() == (8, 8, 8) for t in g)

    def test_ragged(self):
        g = TileGrid(Box.cube(10, 2), 4)
        assert g.counts == (3, 3)
        assert sum(t.num_points() for t in g) == 100

    def test_covers_disjointly(self):
        g = TileGrid(Box.cube(12, 3), 5)
        tiles = list(g)
        assert sum(t.num_points() for t in tiles) == 12**3
        for i, a in enumerate(tiles):
            for b in tiles[i + 1:]:
                assert not a.intersects(b)

    def test_offset_box(self):
        g = TileGrid(Box.cube(8, 2, lo=10), 4)
        assert g.tile_box(0).lo.to_tuple() == (10, 10)

    def test_anisotropic_tiles(self):
        g = TileGrid(Box.cube(8, 2), (4, 2))
        assert g.counts == (2, 4)

    def test_invalid(self):
        with pytest.raises(ValueError):
            TileGrid(Box.empty(2), 4)
        with pytest.raises(ValueError):
            TileGrid(Box.cube(8, 2), 0)

    def test_index_of(self):
        g = TileGrid(Box.cube(16, 3), 8)
        for i in range(len(g)):
            assert g.index_of(g.tile_coords(i)) == i
        assert g.index_of((5, 0, 0)) is None


class TestWavefronts:
    def test_numbering(self):
        g = TileGrid(Box.cube(16, 3), 8)
        assert g.num_wavefronts == 4  # coords sums 0..3
        sizes = g.wavefront_sizes()
        assert sizes == [1, 3, 3, 1]
        assert sum(sizes) == 8

    def test_wavefront_order_respects_dependencies(self):
        g = TileGrid(Box.cube(32, 3), 8)
        for i in range(len(g)):
            for up in g.upstream_neighbors(i):
                assert g.wavefront_of(up) == g.wavefront_of(i) - 1

    def test_upstream_count(self):
        g = TileGrid(Box.cube(16, 3), 8)
        corner = g.index_of((0, 0, 0))
        inner = g.index_of((1, 1, 1))
        assert g.upstream_neighbors(corner) == []
        assert len(g.upstream_neighbors(inner)) == 3

    def test_depth_helper(self):
        assert wavefront_schedule_depth(Box.cube(128, 3), 16) == 22
        assert wavefront_schedule_depth(Box.cube(128, 3), 4) == 94


class TestOverlapAccounting:
    def test_interior_shared_faces(self):
        g = TileGrid(Box.cube(16, 3), 8)
        # One interior plane per direction, 16x16 faces each.
        assert g.interior_shared_faces() == 3 * 16 * 16
        assert g.interior_shared_faces(ncomp=5) == 5 * 3 * 16 * 16

    def test_single_tile_no_sharing(self):
        g = TileGrid(Box.cube(8, 3), 8)
        assert g.interior_shared_faces() == 0
