"""Tests of the variant registry: naming, enumeration, figure line sets."""

import pytest

from repro.schedules import (
    Variant,
    baseline_variant,
    enumerate_design_space,
    figure_variants,
    practical_variants,
    shift_fuse_variant,
    variant_by_label,
)


class TestVariantDescriptor:
    def test_labels(self):
        assert Variant("series", "P>=Box", "CLO").label == "Baseline: P>=Box"
        assert (
            Variant("blocked_wavefront", "P<Box", "CLI", tile_size=4).label
            == "Blocked WF-CLI-4: P<Box"
        )
        assert (
            Variant("overlapped", "P>=Box", "CLO", tile_size=16,
                    intra_tile="shift_fuse").label
            == "Shift-Fuse OT-16: P>=Box"
        )

    def test_short_name_roundtrip_unique(self):
        names = [v.short_name for v in enumerate_design_space()]
        assert len(names) == len(set(names))

    def test_validation(self):
        with pytest.raises(ValueError):
            Variant("nope")
        with pytest.raises(ValueError):
            Variant("series", tile_size=8)
        with pytest.raises(ValueError):
            Variant("series", intra_tile="basic")
        with pytest.raises(ValueError):
            Variant("overlapped", tile_size=8)  # missing intra_tile
        with pytest.raises(ValueError):
            Variant("blocked_wavefront", tile_size=5)
        with pytest.raises(ValueError):
            Variant("series", "sideways")
        with pytest.raises(ValueError):
            Variant("series", component_loop="CLX")

    def test_applicability(self):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=16, intra_tile="basic")
        assert v.applicable_to_box(32)
        assert not v.applicable_to_box(16)  # strictly larger only
        assert Variant("series").applicable_to_box(16)

    def test_is_tiled(self):
        assert not Variant("shift_fuse").is_tiled
        assert Variant("blocked_wavefront", tile_size=8).is_tiled


class TestRegistry:
    def test_practical_count_about_30(self):
        vs = practical_variants()
        assert len(vs) == 32  # the paper's "approximately 30"
        assert len(set(vs)) == 32

    def test_practical_respects_paper_pruning(self):
        for v in practical_variants():
            if v.category == "overlapped":
                # §IV-E: overlapped tiles only with CLO.
                assert v.component_loop == "CLO"
            if v.category == "blocked_wavefront":
                # The figures parallelize wavefronts over tiles.
                assert v.granularity == "P<Box"

    def test_design_space_superset(self):
        space = set(enumerate_design_space())
        assert set(practical_variants()) <= space
        assert len(space) == 56

    def test_named_anchors(self):
        assert baseline_variant().category == "series"
        assert shift_fuse_variant("P<Box").granularity == "P<Box"

    def test_lookup_by_label(self):
        v = variant_by_label("Blocked WF-CLO-16: P<Box")
        assert v.tile_size == 16
        with pytest.raises(KeyError):
            variant_by_label("Nope: P<Box")


class TestFigureVariants:
    @pytest.mark.parametrize("fig", ["fig10", "fig11", "fig12"])
    def test_seven_lines_each(self, fig):
        lines = figure_variants(fig)
        assert len(lines) == 7
        # The two common lines appear in every figure.
        assert "Baseline: P>=Box" in lines
        assert "Shift-Fuse: P>=Box" in lines
        # Labels are consistent with the variants' own labels.
        for label, v in lines.items():
            assert v.label == label

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            figure_variants("fig13")

    def test_fig11_has_hyperthreading_relevant_lines(self):
        lines = figure_variants("fig11")
        assert "Blocked WF-CLI-4: P<Box" in lines
