"""Cross-machine, cross-box-size invariants of the whole study.

One sweep over (machine x box size x key schedules) asserting the
global claims the paper makes everywhere at once.
"""

import pytest

from repro.bench import time_variant
from repro.machine import IVY_BRIDGE, MAGNY_COURS, SANDY_BRIDGE
from repro.schedules import Variant

MACHINES = (MAGNY_COURS, IVY_BRIDGE, SANDY_BRIDGE)
BASE = Variant("series", "P>=Box", "CLO")
OT = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse")
SF = Variant("shift_fuse", "P>=Box", "CLO")


@pytest.fixture(scope="module")
def matrix():
    out = {}
    for m in MACHINES:
        for n in (16, 32, 64, 128):
            for name, v in (("base", BASE), ("sf", SF), ("ot", OT)):
                if not v.applicable_to_box(n):
                    continue
                out[(m.name, n, name)] = time_variant(
                    v, m, m.cores, n
                ).time_s
    return out


class TestGlobalInvariants:
    @pytest.mark.parametrize("machine", [m.name for m in MACHINES])
    def test_baseline_degrades_with_box_size(self, matrix, machine):
        times = [matrix[(machine, n, "base")] for n in (16, 32, 64, 128)]
        assert times[-1] > 1.5 * times[0]
        # Near-monotone: N=32 may dip slightly below N=16 (less ghost
        # overhead while both still fit in cache — the Fig. 9 dip).
        assert all(b >= a * 0.95 for a, b in zip(times, times[1:]))

    @pytest.mark.parametrize("machine", [m.name for m in MACHINES])
    def test_ot_restores_all_large_boxes(self, matrix, machine):
        base16 = matrix[(machine, 16, "base")]
        for n in (32, 64, 128):
            # 1.5x covers the N=32 tile-remainder effect (64 tiles on
            # 20 threads leaves the last round 20% occupied).
            assert matrix[(machine, n, "ot")] <= 1.5 * base16, (machine, n)
        assert matrix[(machine, 128, "ot")] <= 1.35 * base16

    @pytest.mark.parametrize("machine", [m.name for m in MACHINES])
    def test_schedule_ladder_at_128(self, matrix, machine):
        assert (
            matrix[(machine, 128, "ot")]
            < matrix[(machine, 128, "sf")]
            <= matrix[(machine, 128, "base")] * 1.001
        )

    @pytest.mark.parametrize("machine", [m.name for m in MACHINES])
    def test_shift_fuse_never_hurts(self, matrix, machine):
        for n in (16, 32, 64, 128):
            assert matrix[(machine, n, "sf")] <= matrix[(machine, n, "base")] * 1.02

    def test_magny_headline_factor(self, matrix):
        # Fig. 10: ~5x between the baseline and the best OT at N=128.
        ratio = matrix[("magny_cours", 128, "base")] / matrix[("magny_cours", 128, "ot")]
        assert 3.0 < ratio < 10.0
