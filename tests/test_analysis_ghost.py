"""Tests for the Fig. 1 ghost-ratio model."""

import pytest

from repro.analysis import (
    ghost_ratio,
    ghost_ratio_series,
    measured_ghost_ratio,
    min_box_size_for_ratio,
)
from repro.box import Box, ProblemDomain, decompose_domain


class TestFormula:
    def test_known_values(self):
        assert ghost_ratio(16, 3, 2) == pytest.approx((20 / 16) ** 3)
        assert ghost_ratio(128, 4, 5) == pytest.approx((138 / 128) ** 4)

    def test_no_ghosts(self):
        assert ghost_ratio(16, 3, 0) == 1.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            ghost_ratio(0, 3, 2)
        with pytest.raises(ValueError):
            ghost_ratio(16, 3, -1)

    def test_series(self):
        s = ghost_ratio_series((16, 32), dim=3, nghost=2)
        assert s[0] == (16, pytest.approx(1.953125))
        assert len(s) == 2

    def test_paper_claim_five_ghosts_need_64(self):
        # "Given five ghosts, a box size of 64 is necessary to get the
        # ratio below 2.0."
        n = min_box_size_for_ratio(2.0, dim=3, nghost=5)
        assert 32 < n <= 64

    def test_min_box_size_errors(self):
        with pytest.raises(ValueError):
            min_box_size_for_ratio(1.0)
        with pytest.raises(ValueError):
            min_box_size_for_ratio(1.0001, dim=3, nghost=5, max_n=4)


class TestMeasured:
    @pytest.mark.parametrize("box,ghost", [(4, 1), (4, 2), (8, 2)])
    def test_matches_formula_on_periodic_domain(self, box, ghost):
        domain = ProblemDomain(Box.cube(16, 3))
        layout = decompose_domain(domain, box)
        measured = measured_ghost_ratio(layout, ghost)
        assert measured == pytest.approx(ghost_ratio(box, 3, ghost), rel=1e-12)

    def test_2d(self):
        domain = ProblemDomain(Box.cube(16, 2))
        layout = decompose_domain(domain, 8)
        assert measured_ghost_ratio(layout, 2) == pytest.approx(
            ghost_ratio(8, 2, 2), rel=1e-12
        )
