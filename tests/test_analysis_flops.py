"""Flop-count model vs actual executed arithmetic."""

import pytest

from repro.analysis import box_flops, overlapped_box_flops, region_flops, variant_box_flops
from repro.schedules import Variant


class TestRegionFlops:
    def test_cube(self):
        f = region_flops((4, 4, 4), ncomp=5)
        faces = 3 * 5 * 16  # (n+1)*n^2 per dir
        assert f.flux1 == 5 * faces * 5
        assert f.flux2 == 1 * faces * 5
        assert f.accumulate == 2 * 64 * 5 * 3
        assert f.total == f.flux1 + f.flux2 + f.accumulate

    def test_anisotropic(self):
        f = region_flops((2, 3, 4), ncomp=4)
        faces = 3 * 12 + 4 * 8 + 5 * 6
        assert f.flux1 == 5 * faces * 4

    def test_2d(self):
        f = region_flops((4, 4), ncomp=3)
        faces = 2 * 5 * 4
        assert f.flux1 == 5 * faces * 3
        assert f.accumulate == 2 * 16 * 3 * 2


class TestOverlappedRedundancy:
    def test_redundancy_positive(self):
        base = box_flops(16).total
        ot = overlapped_box_flops(16, 8).total
        assert ot > base
        # Flux work scales by ~(T+1)/T per direction; accumulation is
        # never redundant.
        assert overlapped_box_flops(16, 8).accumulate == box_flops(16).accumulate

    def test_smaller_tiles_more_redundancy(self):
        assert (
            overlapped_box_flops(32, 4).total
            > overlapped_box_flops(32, 8).total
            > overlapped_box_flops(32, 16).total
            > box_flops(32).total
        )

    def test_exact_tile_face_count(self):
        # 2 tiles of 8 in each direction: per direction 2*(9*16*16)
        # faces vs 17*16*16 -> one extra plane of 16x16 per direction.
        base = box_flops(16, ncomp=1)
        ot = overlapped_box_flops(16, 8, ncomp=1)
        extra_faces = 3 * 16 * 16
        assert ot.flux1 - base.flux1 == 5 * extra_faces
        assert ot.flux2 - base.flux2 == 1 * extra_faces


class TestVariantDispatch:
    def test_non_tiled_same_as_box(self):
        for cat in ("series", "shift_fuse"):
            v = Variant(cat)
            assert variant_box_flops(v, 16).total == box_flops(16).total

    def test_wavefront_not_redundant(self):
        v = Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8)
        assert variant_box_flops(v, 16).total == box_flops(16).total

    def test_overlapped_redundant(self):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="basic")
        assert variant_box_flops(v, 16).total == overlapped_box_flops(16, 8).total
