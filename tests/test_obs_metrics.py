"""Metrics registry: shard merging, bucket math, and the perf shim."""

import math
from concurrent.futures import ThreadPoolExecutor

from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS_S,
    MetricsRegistry,
)
from repro.util.perf import PerfCounters, format_perf_report, perf, reset_perf, timed


class TestCounters:
    def test_inc_and_read(self):
        reg = MetricsRegistry()
        reg.counter_inc("a")
        reg.counter_inc("a", 2)
        reg.counter_inc("b", 0.5)
        assert reg.counter_value("a") == 3
        assert reg.counter_value("b") == 0.5
        assert reg.counter_value("missing") == 0

    def test_concurrent_increments_are_exact(self):
        reg = MetricsRegistry()
        nthreads, per_thread = 8, 5000

        def work(_):
            for _ in range(per_thread):
                reg.counter_inc("hits")

        with ThreadPoolExecutor(max_workers=nthreads) as pool:
            list(pool.map(work, range(nthreads)))
        assert reg.counter_value("hits") == nthreads * per_thread

    def test_typed_facade(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5


class TestGauges:
    def test_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge_set("g", 1.0)
        reg.gauge_set("g", 7.0)
        assert reg.gauge_value("g") == 7.0

    def test_last_write_wins_across_threads(self):
        reg = MetricsRegistry()

        def work(i):
            reg.gauge_set("g", float(i))

        with ThreadPoolExecutor(max_workers=4) as pool:
            list(pool.map(work, range(100)))
        # Whichever write got the highest sequence number wins; it must
        # be one of the written values, not a torn merge.
        assert reg.gauge_value("g") in {float(i) for i in range(100)}

    def test_unset_gauge_is_none(self):
        assert MetricsRegistry().gauge_value("nope") is None


class TestHistograms:
    def test_bucket_boundaries_are_inclusive_upper_edges(self):
        reg = MetricsRegistry()
        reg.register_histogram("h", [1.0, 2.0, 4.0])
        for v in (0.5, 1.0):     # <= 1.0 -> bucket 0
            reg.histogram_observe("h", v)
        reg.histogram_observe("h", 1.5)   # <= 2.0 -> bucket 1
        reg.histogram_observe("h", 4.0)   # <= 4.0 -> bucket 2
        reg.histogram_observe("h", 99.0)  # overflow
        snap = reg.histogram_snapshot("h")
        assert snap.boundaries == (1.0, 2.0, 4.0)
        assert snap.bucket_counts == [2, 1, 1, 1]
        assert snap.count == 5
        assert snap.sum == 0.5 + 1.0 + 1.5 + 4.0 + 99.0
        assert snap.min == 0.5
        assert snap.max == 99.0
        assert snap.mean == snap.sum / 5

    def test_registration_is_first_wins(self):
        reg = MetricsRegistry()
        assert reg.register_histogram("h", [3.0, 1.0]) == (1.0, 3.0)
        assert reg.register_histogram("h", [99.0]) == (1.0, 3.0)

    def test_unregistered_uses_default_time_buckets(self):
        reg = MetricsRegistry()
        reg.histogram_observe("t", 0.5e-6)
        snap = reg.histogram_snapshot("t")
        assert snap.boundaries == DEFAULT_TIME_BUCKETS_S
        assert snap.bucket_counts[0] == 1

    def test_empty_histogram_snapshot(self):
        snap = MetricsRegistry().histogram_snapshot("never")
        assert snap.count == 0
        assert math.isnan(snap.mean)
        assert math.isnan(snap.min)
        assert math.isnan(snap.quantile(0.5))

    def test_quantile_returns_bucket_edge(self):
        reg = MetricsRegistry()
        reg.register_histogram("h", [1.0, 10.0, 100.0])
        for _ in range(90):
            reg.histogram_observe("h", 0.5)
        for _ in range(10):
            reg.histogram_observe("h", 50.0)
        snap = reg.histogram_snapshot("h")
        assert snap.quantile(0.5) == 1.0
        assert snap.quantile(0.95) == 100.0
        assert snap.quantile(1.0) == 100.0

    def test_quantile_overflow_is_inf(self):
        reg = MetricsRegistry()
        reg.register_histogram("h", [1.0])
        reg.histogram_observe("h", 5.0)
        assert reg.histogram_snapshot("h").quantile(1.0) == math.inf

    def test_concurrent_observations_merge_exactly(self):
        reg = MetricsRegistry()
        reg.register_histogram("h", [10.0, 100.0])

        def work(i):
            reg.histogram_observe("h", float(i % 150))

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(work, range(1500)))
        snap = reg.histogram_snapshot("h")
        assert snap.count == 1500
        assert sum(snap.bucket_counts) == 1500
        assert snap.min == 0.0
        assert snap.max == 149.0

    def test_to_dict_matches_validator_contract(self):
        reg = MetricsRegistry()
        reg.register_histogram("h", [1.0, 2.0])
        reg.histogram_observe("h", 1.5)
        d = reg.histogram_snapshot("h").to_dict()
        assert len(d["bucket_counts"]) == len(d["boundaries"]) + 1
        assert d["count"] == sum(d["bucket_counts"])
        assert d["min"] == d["max"] == 1.5


class TestRegistryAdmin:
    def test_snapshot_sections(self):
        reg = MetricsRegistry()
        reg.counter_inc("c", 2)
        reg.gauge_set("g", 3.0)
        reg.histogram_observe("h", 1.0)
        snap = reg.snapshot()
        assert snap["counters"] == {"c": 2}
        assert snap["gauges"] == {"g": 3.0}
        assert "h" in snap["histograms"]

    def test_reset_by_prefix(self):
        reg = MetricsRegistry()
        reg.counter_inc("a.x")
        reg.counter_inc("b.y")
        reg.reset("a.")
        assert reg.counter_value("a.x") == 0
        assert reg.counter_value("b.y") == 1

    def test_counter_names_merged(self):
        reg = MetricsRegistry()

        def work(i):
            reg.counter_inc(f"n{i % 3}")

        with ThreadPoolExecutor(max_workers=3) as pool:
            list(pool.map(work, range(30)))
        assert reg.counter_names() == ["n0", "n1", "n2"]


class TestPerfShim:
    def test_basic_counting(self):
        pc = PerfCounters()
        pc.inc("arena.hits")
        pc.inc("arena.hits", 2)
        pc.inc("arena.misses")
        assert pc.get("arena.hits") == 3
        assert pc.hit_rate("arena") == 0.75

    def test_timing(self):
        pc = PerfCounters()
        pc.add_time("solve", 0.25)
        pc.add_time("solve", 0.25)
        assert pc.get_time("solve") == 0.5

    def test_reset_scoped_to_prefix(self):
        pc = PerfCounters()
        pc.inc("x")
        pc.reset()
        assert pc.get("x") == 0
        # The global perf() facade must not clobber unrelated metrics.
        other = pc.registry.counter("unrelated.counter")
        other.inc()
        reset_perf()
        assert other.value == 1

    def test_concurrent_inc_exact(self):
        pc = PerfCounters()

        def work(_):
            for _ in range(2000):
                pc.inc("n")

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(work, range(8)))
        assert pc.get("n") == 16000

    def test_global_perf_report(self):
        reset_perf()
        perf().inc("arena.hits", 3)
        perf().inc("arena.misses")
        with timed("phase"):
            pass
        report = format_perf_report()
        assert "scratch arena: 3 hits / 1 misses" in report
        assert "phase" in report
        reset_perf()

    def test_snapshot_has_counts_and_times(self):
        pc = PerfCounters()
        pc.inc("a")
        pc.add_time("t", 1.0)
        snap = pc.snapshot()
        assert snap["counts"]["a"] == 1
        assert snap["times"]["t"] == 1.0


class TestGaugeSetMax:
    def test_only_raises_the_mark(self):
        reg = MetricsRegistry()
        reg.gauge_set_max("hw", 5.0)
        assert reg.gauge_value("hw") == 5.0
        reg.gauge_set_max("hw", 3.0)
        assert reg.gauge_value("hw") == 5.0
        reg.gauge_set_max("hw", 9.0)
        assert reg.gauge_value("hw") == 9.0

    def test_handle_api(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set_max(2.0)
        g.set_max(1.0)
        assert g.value == 2.0
