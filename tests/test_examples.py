"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; they must keep working.
Invocations are scaled down where the script accepts arguments.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "all schedules agree BITWISE" in out
    assert "Magny-Cours" in out


def test_advection_solver():
    out = run_example("advection_solver.py")
    assert "conservation drift" in out
    assert "done." in out


def test_heat_equation():
    out = run_example("heat_equation.py")
    assert "substrate verified" in out


def test_schedule_explorer_small():
    out = run_example("schedule_explorer.py", "ivy_desktop", "32")
    assert "best:" in out and "spread:" in out


def test_paper_figures_single():
    out = run_example("paper_figures.py", "fig1")
    assert "Ratio of total cells" in out


def test_amr_two_level():
    out = run_example("amr_two_level.py")
    assert "conservation across levels holds" in out


@pytest.mark.slow
def test_ghost_cell_tradeoff():
    out = run_example("ghost_cell_tradeoff.py")
    assert "wins end to end" in out
