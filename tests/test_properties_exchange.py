"""Property-based tests of the ghost exchange (hypothesis).

Every ghost cell of a periodic level must equal the valid cell at its
wrapped image, for arbitrary divisible (domain, box, ghost) triples.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.box import Box, LevelData, ProblemDomain, decompose_domain


@st.composite
def exchange_configs(draw):
    dim = draw(st.integers(2, 3))
    boxes_per_dim = draw(st.integers(1, 3))
    box_size = draw(st.integers(2, 5))
    ghost = draw(st.integers(1, min(2, box_size)))
    n = boxes_per_dim * box_size
    return dim, n, box_size, ghost


@settings(max_examples=25, deadline=None)
@given(exchange_configs())
def test_every_ghost_matches_wrapped_image(cfg):
    dim, n, box_size, ghost = cfg
    domain = ProblemDomain(Box.cube(n, dim))
    layout = decompose_domain(domain, box_size)
    ld = LevelData(layout, ncomp=1, ghost=ghost)
    weights = [1, n + 3, (n + 3) ** 2][:dim]

    def fn(*grids_and_comp):
        *grids, _ = grids_and_comp
        acc = 0
        for g, w in zip(grids, weights):
            acc = acc + g * w
        return acc

    ld.fill_from_function(fn)
    ld.exchange()

    for i in layout:
        box = layout.box(i)
        grown = box.grow(ghost)
        data = np.asarray(ld[i].window(grown, comp=0))
        grids = np.meshgrid(
            *[np.arange(grown.lo[d], grown.hi[d] + 1) for d in range(dim)],
            indexing="ij",
        )
        expect = sum(((g % n) * w) for g, w in zip(grids, weights))
        assert np.array_equal(data, expect)


@settings(max_examples=15, deadline=None)
@given(exchange_configs(), st.integers(0, 2**16))
def test_exchange_never_alters_valid_cells(cfg, seed):
    dim, n, box_size, ghost = cfg
    domain = ProblemDomain(Box.cube(n, dim))
    layout = decompose_domain(domain, box_size)
    ld = LevelData(layout, ncomp=2, ghost=ghost)
    rng = np.random.default_rng(seed)
    for fab in ld.fabs:
        fab.data[...] = rng.random(fab.data.shape)
    before = ld.to_global_array()
    ld.exchange()
    assert np.array_equal(ld.to_global_array(), before)
