"""Tracer core: nesting, thread-shard merging, and the no-op fast path."""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.obs import trace as T


class TestSpanBasics:
    def test_span_records_name_and_duration(self):
        with T.tracing() as tracer:
            with T.span("work", kind="unit"):
                pass
        spans = tracer.spans()
        assert len(spans) == 1
        s = spans[0]
        assert s.name == "work"
        assert s.attrs == {"kind": "unit"}
        assert s.dur_ns >= 0
        assert s.start_ns >= 0

    def test_nesting_sets_parent_ids(self):
        with T.tracing() as tracer:
            with T.span("outer"):
                with T.span("middle"):
                    with T.span("inner"):
                        pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["outer"].parent_id is None
        assert by_name["middle"].parent_id == by_name["outer"].span_id
        assert by_name["inner"].parent_id == by_name["middle"].span_id

    def test_sibling_spans_share_parent(self):
        with T.tracing() as tracer:
            with T.span("root"):
                with T.span("a"):
                    pass
                with T.span("b"):
                    pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["a"].parent_id == by_name["root"].span_id
        assert by_name["b"].parent_id == by_name["root"].span_id
        assert by_name["a"].span_id != by_name["b"].span_id

    def test_set_attr_after_entry(self):
        with T.tracing() as tracer:
            with T.span("task") as s:
                s.set_attr(result=42)
        assert tracer.spans()[0].attrs["result"] == 42

    def test_current_span_name(self):
        assert T.current_span_name() is None
        with T.tracing():
            assert T.current_span_name() is None
            with T.span("outer"):
                with T.span("inner"):
                    assert T.current_span_name() == "inner"
                assert T.current_span_name() == "outer"

    def test_span_survives_exception(self):
        with T.tracing() as tracer:
            try:
                with T.span("boom"):
                    raise ValueError("x")
            except ValueError:
                pass
            # The stack must be clean: a new span nests at the root.
            with T.span("after"):
                pass
        by_name = {s.name: s for s in tracer.spans()}
        assert by_name["after"].parent_id is None
        assert tracer.open_depth() == 0


class TestDisabledFastPath:
    def test_span_returns_shared_noop(self):
        assert not T.tracing_enabled()
        s1 = T.span("a", big=1)
        s2 = T.span("b")
        assert s1 is s2 is T.NOOP_SPAN
        with s1 as inner:
            inner.set_attr(x=1)
            inner.event("e")

    def test_add_event_and_sample_are_noops(self):
        T.add_event("nothing", x=1)
        T.counter_sample("nothing", 1.0)

    def test_tracing_scope_restores_previous(self):
        assert T.active_tracer() is None
        with T.tracing() as outer:
            assert T.active_tracer() is outer
            with T.tracing() as inner:
                assert T.active_tracer() is inner
            assert T.active_tracer() is outer
        assert T.active_tracer() is None

    def test_start_stop_round_trip(self):
        t = T.start_tracing()
        with T.span("x"):
            pass
        got = T.stop_tracing()
        assert got is t
        assert len(t.spans()) == 1
        assert not T.tracing_enabled()


class TestEvents:
    def test_event_attaches_to_open_span(self):
        with T.tracing() as tracer:
            with T.span("task"):
                T.add_event("fault", mode="raise")
        (e,) = tracer.events()
        (s,) = tracer.spans()
        assert e.span_id == s.span_id
        assert e.span_name == "task"
        assert e.attrs == {"mode": "raise"}

    def test_orphan_event_allowed(self):
        with T.tracing() as tracer:
            T.add_event("loose")
        (e,) = tracer.events()
        assert e.span_id is None

    def test_counter_samples_ordered(self):
        with T.tracing() as tracer:
            T.counter_sample("bytes", 10)
            T.counter_sample("bytes", 30)
        values = [c.value for c in tracer.samples()]
        assert values == [10.0, 30.0]
        assert tracer.samples()[0].ts_ns <= tracer.samples()[1].ts_ns


class TestThreads:
    def test_spans_merge_across_pool_threads(self):
        nthreads, per_thread = 4, 25
        with T.tracing() as tracer:
            def work(i):
                with T.span("task", index=i):
                    with T.span("sub", index=i):
                        pass

            with ThreadPoolExecutor(max_workers=nthreads) as pool:
                list(pool.map(work, range(nthreads * per_thread)))
        spans = tracer.spans()
        tasks = [s for s in spans if s.name == "task"]
        subs = [s for s in spans if s.name == "sub"]
        assert len(tasks) == nthreads * per_thread
        assert len(subs) == nthreads * per_thread
        # Nesting is per thread: every sub's parent is a task on the
        # same thread with the same index.
        by_id = {s.span_id: s for s in spans}
        for sub in subs:
            parent = by_id[sub.parent_id]
            assert parent.name == "task"
            assert parent.tid == sub.tid
            assert parent.attrs["index"] == sub.attrs["index"]

    def test_each_thread_is_its_own_lane(self):
        with T.tracing() as tracer:
            barrier = threading.Barrier(3)

            def work():
                barrier.wait()
                with T.span("lane"):
                    pass

            threads = [threading.Thread(target=work) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        tids = {s.tid for s in tracer.spans()}
        assert len(tids) == 3

    def test_merged_read_is_sorted_by_start(self):
        def work(i):
            with T.span("s", i=i):
                pass

        with T.tracing() as tracer:
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(work, range(40)))
        starts = [s.start_ns for s in tracer.spans()]
        assert starts == sorted(starts)
