"""Tests of the bandwidth-profile counters (the VTune stand-in)."""

import pytest

from repro.machine import IVY_DESKTOP, build_workload
from repro.machine.counters import BandwidthProfile, BandwidthSample, profile_workload
from repro.schedules import Variant


def profile(variant, n=128, threads=1):
    wl = build_workload(variant, n)
    return profile_workload(wl, IVY_DESKTOP, threads)


class TestSampleAlgebra:
    def test_sample_end(self):
        s = BandwidthSample(1.0, 2.0, 5.0)
        assert s.end_s == 3.0

    def test_profile_totals(self):
        p = BandwidthProfile("m", "v", 1)
        p.samples = [BandwidthSample(0, 1.0, 10.0), BandwidthSample(1, 1.0, 2.0)]
        assert p.total_time_s == 2.0
        assert p.total_bytes == pytest.approx(12e9)
        assert p.mean_gbs() == pytest.approx(6.0)
        assert p.time_fraction_above(5.0) == pytest.approx(0.5)
        assert p.peak_sustained_gbs() == 10.0

    def test_stretch_coalescing(self):
        p = BandwidthProfile("m", "v", 1)
        p.samples = [
            BandwidthSample(0, 1.0, 9.4),
            BandwidthSample(1, 1.0, 9.6),
            BandwidthSample(2, 1.0, 5.0),
        ]
        stretches = p.stretches(tolerance_gbs=0.5)
        assert len(stretches) == 2
        assert stretches[0].duration_s == 2.0
        assert stretches[0].gbs == pytest.approx(9.5)

    def test_empty_profile(self):
        p = BandwidthProfile("m", "v", 1)
        assert p.mean_gbs() == 0.0
        assert p.time_fraction_above(1.0) == 0.0
        assert p.peak_sustained_gbs() == 0.0


class TestPaperProfiles:
    """§VI-B's qualitative descriptions of the desktop traces."""

    def test_baseline_profile_flat(self):
        p = profile(Variant("series", "P>=Box", "CLO"))
        gbs = [s.gbs for s in p.samples]
        assert max(gbs) - min(gbs) < 0.2 * max(gbs)

    def test_shift_fuse_interleaved_stretches(self):
        # "time stretches requiring 9.4 GB/s interleaved with time
        # intervals of similar length requiring less than 6 GB/s".
        p = profile(Variant("shift_fuse", "P>=Box", "CLO"))
        gbs = sorted({round(s.gbs, 2) for s in p.samples})
        assert len(gbs) >= 2
        assert gbs[-1] > 1.5 * gbs[0]  # clearly bimodal
        # The high stretch exceeds the run's mean; the low sits below.
        assert gbs[-1] > p.mean_gbs() > gbs[0]

    def test_mean_matches_simulator(self):
        from repro.machine import estimate_workload

        wl = build_workload(Variant("series", "P>=Box", "CLO"), 128)
        p = profile_workload(wl, IVY_DESKTOP, 1)
        r = estimate_workload(wl, IVY_DESKTOP, 1)
        assert p.mean_gbs() == pytest.approx(r.bandwidth_gbs, rel=1e-6)
        assert p.total_time_s == pytest.approx(r.time_s, rel=1e-6)

    def test_shift_fuse_high_stretch_near_paper(self):
        # The precompute stretch should land in the paper's 9.4 GB/s
        # regime (within 2x).
        p = profile(Variant("shift_fuse", "P>=Box", "CLO"))
        peak = p.peak_sustained_gbs()
        assert 4.7 < peak < 18.8
