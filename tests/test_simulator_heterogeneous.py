"""Simulator behaviour on heterogeneous and degenerate workloads."""

import pytest

from repro.analysis.traffic import ReuseStream, TrafficModel
from repro.machine import SANDY_BRIDGE, estimate_workload, simulate_workload
from repro.machine.workload import Phase, WorkItem, Workload
from repro.schedules import Variant


def item(flops, compulsory, label="i"):
    return WorkItem(label, flops, TrafficModel(compulsory))


def workload(phases):
    wl = Workload(Variant("series"), 16, 1, 5, 3)
    wl.phases = phases
    return wl


class TestHeterogeneousPhases:
    def test_mixed_sizes_bounds(self):
        p = Phase("mixed")
        p.add(item(1e9, 1e6, "big"), 1)
        p.add(item(1e7, 1e4, "small"), 10)
        wl = workload([p])
        est = estimate_workload(wl, SANDY_BRIDGE, 4)
        sim = simulate_workload(wl, SANDY_BRIDGE, 4)
        # The estimate is a lower-bound-style approximation; the event
        # simulation must be >= the work-sharing bound and within 2x of
        # the estimate for this mild mix.
        assert sim.time_s >= est.time_s * 0.99
        assert sim.time_s < 2.0 * est.time_s

    def test_single_big_item_dominates(self):
        p = Phase("dominated")
        p.add(item(1e10, 1e3, "huge"), 1)
        p.add(item(1e5, 1e3, "tiny"), 100)
        wl = workload([p])
        r = simulate_workload(wl, SANDY_BRIDGE, 8)
        rate = SANDY_BRIDGE.thread_compute_rate(8)
        assert r.time_s >= 1e10 / rate

    def test_empty_workload(self):
        wl = workload([])
        r = estimate_workload(wl, SANDY_BRIDGE, 4)
        assert r.time_s == 0.0
        assert r.flops == 0.0

    def test_more_threads_than_items(self):
        p = Phase("few")
        p.add(item(1e8, 1e6), 2)
        wl = workload([p])
        t2 = simulate_workload(wl, SANDY_BRIDGE, 2).time_s
        t8 = simulate_workload(wl, SANDY_BRIDGE, 8).time_s
        # Extra threads cannot speed up 2 items.
        assert t8 == pytest.approx(t2, rel=0.05)


class TestBandwidthContention:
    def test_bandwidth_bound_phase_shares(self):
        # Items that are purely memory-bound: doubling concurrency
        # cannot beat the aggregate bandwidth.
        p = Phase("stream")
        p.add(item(1.0, 1e9), 16)
        wl = workload([p])
        r = simulate_workload(wl, SANDY_BRIDGE, 16)
        floor = 16e9 / (SANDY_BRIDGE.available_bw_gbs(16) * 1e9)
        assert r.time_s >= floor * 0.999

    def test_single_thread_core_cap(self):
        p = Phase("one")
        p.add(item(1.0, 1e9), 1)
        wl = workload([p])
        r = simulate_workload(wl, SANDY_BRIDGE, 1)
        assert r.time_s >= 1e9 / (SANDY_BRIDGE.core_bw_cap_gbs * 1e9) * 0.999

    def test_streams_respond_to_cache(self):
        tm = TrafficModel(1e6, [ReuseStream("s", 1e6, 2e6)])
        hungry = WorkItem("h", 1.0, tm)
        p = Phase("x")
        p.add(hungry, 4)
        wl = workload([p])
        # Sandy Bridge at 4 threads: 10 MB L3 share -> stream hits;
        # at 16 threads: 2.5 MB -> still hits (ws=2MB).  Compare with a
        # tiny-cache machine by scaling ws up instead.
        tm_big = TrafficModel(1e6, [ReuseStream("s", 1e6, 1e9)])
        p2 = Phase("y")
        p2.add(WorkItem("h2", 1.0, tm_big), 4)
        wl2 = workload([p2])
        r1 = estimate_workload(wl, SANDY_BRIDGE, 4)
        r2 = estimate_workload(wl2, SANDY_BRIDGE, 4)
        assert r2.dram_bytes > r1.dram_bytes


class TestEstimateDivergenceBounds:
    """The bound-based heterogeneous estimate must be a true lower
    bound on the event simulation, and stay within a small factor.

    Regression: the largest-item term used to charge the typical
    round's k-way bandwidth share, which *overestimates* a lone big
    item's finish time — on bandwidth-heavy mixes the "lower bound"
    exceeded the simulation by up to 5x."""

    def _engines(self, phase, threads=8):
        wl = workload([phase])
        est = estimate_workload(wl, SANDY_BRIDGE, threads)
        sim = simulate_workload(wl, SANDY_BRIDGE, threads)
        return est, sim

    def test_estimate_is_lower_bound_bandwidth_heavy(self):
        # One huge memory-bound item among many tiny ones: pre-fix the
        # big item was charged 8-way-shared bandwidth it never sees.
        p = Phase("bw-heavy")
        p.add(item(1e6, 4e9, "huge"), 1)
        p.add(item(1e6, 1e3, "tiny"), 64)
        est, sim = self._engines(p)
        assert est.time_s <= sim.time_s * (1 + 1e-9)
        assert sim.time_s <= 3.0 * est.time_s

    def test_estimate_is_lower_bound_compute_heavy(self):
        p = Phase("cpu-heavy")
        p.add(item(5e9, 1e3, "big"), 3)
        p.add(item(1e7, 1e3, "small"), 40)
        est, sim = self._engines(p)
        assert est.time_s <= sim.time_s * (1 + 1e-9)
        assert sim.time_s <= 3.0 * est.time_s

    def test_estimate_is_lower_bound_mixed_sweep(self):
        # A deterministic sweep over flop/byte mixes and thread counts.
        mixes = [
            ((1e9, 1e6), (1e7, 1e4, 10)),
            ((1e8, 2e9), (1e8, 1e5, 6)),
            ((1e6, 1e9), (1e9, 1e3, 4)),
            ((2e9, 2e9), (1e5, 1e8, 12)),
        ]
        for threads in (2, 4, 8, 16):
            for (bf, bb), (sf, sb, count) in mixes:
                p = Phase("mix")
                p.add(item(bf, bb, "a"), 1)
                p.add(item(sf, sb, "b"), count)
                est, sim = self._engines(p, threads)
                assert est.time_s <= sim.time_s * (1 + 1e-9), (threads, bf, bb)
                assert sim.time_s <= 3.0 * est.time_s, (threads, bf, bb)

    def test_bookkeeping_exact_equality(self):
        # flops/bytes accounting goes through one shared loop: the two
        # engines must agree bitwise, not approximately.
        p = Phase("mix")
        p.add(item(1e9, 1e6, "a"), 3)
        p.add(item(3e7, 7e5, "b"), 17)
        p2 = Phase("uniform")
        p2.add(item(2e8, 5e5, "c"), 11)
        wl = workload([p, p2])
        est = estimate_workload(wl, SANDY_BRIDGE, 4)
        sim = simulate_workload(wl, SANDY_BRIDGE, 4)
        assert est.flops == sim.flops
        assert est.dram_bytes == sim.dram_bytes
        assert len(est.phase_times) == len(sim.phase_times) == 2
