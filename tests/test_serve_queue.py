"""Bounded priority queue: bound, ordering, close semantics."""

import threading

import pytest

from repro.serve.queue import BoundedPriorityQueue


class TestBound:
    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedPriorityQueue(0)

    def test_offer_refused_at_limit(self):
        q = BoundedPriorityQueue(2)
        assert q.offer("a") and q.offer("b")
        assert not q.offer("c")
        assert q.depth() == 2
        s = q.stats()
        assert s["offered"] == 3 and s["refused"] == 1

    def test_high_water_never_exceeds_limit(self):
        q = BoundedPriorityQueue(3)
        for i in range(10):
            q.offer(i)
        assert q.high_water <= q.limit == 3

    def test_room_after_take(self):
        q = BoundedPriorityQueue(1)
        assert q.offer("a")
        assert not q.offer("b")
        assert q.take() == "a"
        assert q.offer("b")


class TestOrdering:
    def test_higher_priority_first(self):
        q = BoundedPriorityQueue(8)
        q.offer("low", priority=0)
        q.offer("high", priority=5)
        q.offer("mid", priority=2)
        assert [q.take() for _ in range(3)] == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        q = BoundedPriorityQueue(8)
        for name in ("first", "second", "third"):
            q.offer(name, priority=1)
        assert [q.take() for _ in range(3)] == ["first", "second", "third"]


class TestTakeAndClose:
    def test_take_timeout_returns_none(self):
        q = BoundedPriorityQueue(2)
        assert q.take(timeout=0.01) is None

    def test_close_refuses_offers(self):
        q = BoundedPriorityQueue(2)
        q.close()
        assert not q.offer("a")
        assert q.closed

    def test_close_wakes_blocked_taker(self):
        q = BoundedPriorityQueue(2)
        got = []
        t = threading.Thread(target=lambda: got.append(q.take(timeout=5.0)))
        t.start()
        q.close()
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert got == [None]

    def test_closed_queue_drains_remaining(self):
        q = BoundedPriorityQueue(4)
        q.offer("a")
        q.offer("b")
        q.close()
        assert q.take() == "a"
        assert q.take() == "b"
        assert q.take() is None


class TestOfferDisplacing:
    def test_behaves_like_offer_with_room(self):
        q = BoundedPriorityQueue(2)
        assert q.offer_displacing("a", priority=0) == (True, None)
        assert q.depth() == 1
        assert q.stats()["evictions"] == 0

    def test_evicts_strictly_lower_priority(self):
        q = BoundedPriorityQueue(2)
        q.offer("low", priority=0)
        q.offer("mid", priority=2)
        admitted, evicted = q.offer_displacing("high", priority=5)
        assert admitted and evicted == "low"
        assert q.depth() == 2  # bound still holds
        assert q.stats()["evictions"] == 1
        assert [q.take() for _ in range(2)] == ["high", "mid"]

    def test_equal_priority_never_displaced(self):
        q = BoundedPriorityQueue(1)
        q.offer("first", priority=3)
        admitted, evicted = q.offer_displacing("peer", priority=3)
        assert not admitted and evicted is None
        assert q.take() == "first"
        s = q.stats()
        assert s["refused"] == 1 and s["evictions"] == 0

    def test_latest_arrival_breaks_the_tie_among_victims(self):
        q = BoundedPriorityQueue(2)
        q.offer("old_low", priority=0)
        q.offer("new_low", priority=0)
        admitted, evicted = q.offer_displacing("high", priority=1)
        assert admitted and evicted == "new_low"
        assert [q.take() for _ in range(2)] == ["high", "old_low"]

    def test_closed_queue_refuses_displacing_offers(self):
        q = BoundedPriorityQueue(2)
        q.offer("a", priority=0)
        q.close()
        assert q.offer_displacing("b", priority=9) == (False, None)

    def test_high_water_and_bound_hold_through_evictions(self):
        q = BoundedPriorityQueue(3)
        for i in range(3):
            q.offer(f"low{i}", priority=0)
        for i in range(5):
            admitted, _ = q.offer_displacing(f"high{i}", priority=1 + i)
            assert admitted
        assert q.depth() == 3
        assert q.high_water == 3
        assert q.stats()["evictions"] == 5
