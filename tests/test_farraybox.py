"""Unit tests for FArrayBox windowed data access."""

import numpy as np
import pytest

from repro.box import Box, FArrayBox


class TestAllocation:
    def test_shape_and_order(self):
        fab = FArrayBox(Box.cube(4, 3), ncomp=5)
        assert fab.data.shape == (4, 4, 4, 5)
        assert fab.data.flags.f_contiguous
        assert fab.data.dtype == np.float64

    def test_zero_initialized(self):
        fab = FArrayBox(Box.cube(2, 2), 1)
        assert np.all(fab.data == 0)

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            FArrayBox(Box.empty(3), 1)

    def test_bad_ncomp(self):
        with pytest.raises(ValueError):
            FArrayBox(Box.cube(2, 2), 0)

    def test_alias_data(self):
        arr = np.ones((2, 2, 3), order="F")
        fab = FArrayBox(Box.cube(2, 2), 3, data=arr)
        fab.data[0, 0, 0] = 7
        assert arr[0, 0, 0] == 7

    def test_alias_shape_mismatch(self):
        with pytest.raises(ValueError):
            FArrayBox(Box.cube(2, 2), 3, data=np.ones((2, 2, 2)))


class TestWindow:
    def test_window_is_view(self):
        fab = FArrayBox(Box.cube(8, 2).grow(2), 1)
        w = fab.window(Box.cube(8, 2))
        w[...] = 3.0
        assert fab.window(Box.cube(2, 2)).sum() == 4 * 3.0
        # ghost ring untouched
        assert fab.data.sum() == 64 * 3.0

    def test_window_component(self):
        fab = FArrayBox(Box.cube(4, 2), 3)
        fab.set_val(2.0, comp=1)
        assert fab.window(Box.cube(4, 2), comp=1).sum() == 32.0
        assert fab.window(Box.cube(4, 2), comp=0).sum() == 0.0

    def test_window_outside_raises(self):
        fab = FArrayBox(Box.cube(4, 2), 1)
        with pytest.raises(ValueError):
            fab.window(Box.cube(4, 2, lo=2))

    def test_getitem(self):
        fab = FArrayBox(Box.cube(4, 2), 2)
        assert fab[Box.cube(2, 2)].shape == (2, 2, 2)


class TestCopyFrom:
    def test_intersection_copy(self):
        a = FArrayBox(Box.cube(4, 2), 1)
        b = FArrayBox(Box.cube(4, 2, lo=2), 1)
        b.set_val(5.0)
        a.copy_from(b)
        assert a.window(Box.from_extents((2, 2), (2, 2))).sum() == 4 * 5.0
        assert a.window(Box.cube(2, 2)).sum() == 0.0

    def test_offset_copy(self):
        a = FArrayBox(Box.cube(4, 2), 1)
        b = FArrayBox(Box.cube(4, 2), 1)
        b.window(Box.cube(2, 2))[...] = 1.0
        a.copy_from(
            b,
            region=Box.cube(2, 2, lo=2),
            src_region=Box.cube(2, 2),
        )
        assert a.window(Box.cube(2, 2, lo=2)).sum() == 4.0

    def test_shape_mismatch(self):
        a = FArrayBox(Box.cube(4, 2), 1)
        with pytest.raises(ValueError):
            a.copy_from(a, region=Box.cube(2, 2), src_region=Box.cube(3, 2))

    def test_ncomp_mismatch(self):
        a = FArrayBox(Box.cube(2, 2), 1)
        b = FArrayBox(Box.cube(2, 2), 2)
        with pytest.raises(ValueError):
            a.copy_from(b, region=Box.cube(2, 2), src_region=Box.cube(2, 2))

    def test_partial_args_rejected(self):
        a = FArrayBox(Box.cube(2, 2), 1)
        with pytest.raises(ValueError):
            a.copy_from(a, region=Box.cube(2, 2))


class TestReductions:
    def test_norms(self):
        fab = FArrayBox(Box.cube(2, 2), 1)
        fab.data[...] = -3.0
        assert fab.norm(0) == 3.0
        assert fab.norm(2) == pytest.approx(np.sqrt(4 * 9.0))
        assert fab.norm(1) == pytest.approx(12.0)

    def test_min_max_region(self):
        fab = FArrayBox(Box.cube(4, 2), 1)
        fab.window(Box.cube(2, 2))[...] = 9.0
        assert fab.max() == 9.0
        assert fab.max(Box.cube(2, 2, lo=2)) == 0.0
        assert fab.min(Box.cube(2, 2)) == 9.0

    def test_copy_independent(self):
        fab = FArrayBox(Box.cube(2, 2), 1)
        cp = fab.copy()
        cp.data[...] = 1.0
        assert fab.data.sum() == 0.0
