"""Exporters: Chrome trace schema, JSONL shape, metrics snapshots."""

import io
import json
import math

from repro.obs import trace as T
from repro.obs.export import (
    chrome_trace_events,
    validate_chrome_trace,
    validate_metrics_json,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
)
from repro.obs.metrics import MetricsRegistry


def _record_small_trace():
    with T.tracing() as tracer:
        with T.span("grid.run", points=2):
            with T.span("grid.point", index=0) as s:
                s.set_attr(model_time_s=1.25)
                T.add_event("grid.retry", attempt=1)
            T.counter_sample("model.dram_bytes", 1024.0)
            with T.span("grid.point", index=1):
                pass
    return tracer


class TestChromeTrace:
    def test_emitted_trace_validates(self, tmp_path):
        tracer = _record_small_trace()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, tracer)
        assert validate_chrome_trace(path) == []

    def test_event_structure(self):
        tracer = _record_small_trace()
        events = chrome_trace_events(tracer)
        by_phase = {}
        for ev in events:
            by_phase.setdefault(ev["ph"], []).append(ev)
        # One process_name plus a thread_name per lane.
        meta = by_phase["M"]
        assert any(e["name"] == "process_name" for e in meta)
        assert any(e["name"] == "thread_name" for e in meta)
        # Three complete spans with µs timestamps and args.
        complete = by_phase["X"]
        assert sorted(e["name"] for e in complete) == [
            "grid.point", "grid.point", "grid.run",
        ]
        for e in complete:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["cat"] == "grid"
        # The instant event carries its enclosing span's name.
        (instant,) = by_phase["i"]
        assert instant["s"] == "t"
        assert instant["args"]["span"] == "grid.point"
        # The counter track.
        (counter,) = by_phase["C"]
        assert counter["name"] == "model.dram_bytes"
        assert counter["args"] == {"value": 1024.0}

    def test_document_wrapper(self, tmp_path):
        path = str(tmp_path / "t.json")
        write_chrome_trace(path, _record_small_trace())
        with open(path) as f:
            doc = json.load(f)
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["producer"] == "repro.obs"

    def test_nan_attrs_are_sanitized(self, tmp_path):
        with T.tracing() as tracer:
            with T.span("point") as s:
                s.set_attr(model_time_s=math.nan, gbs=math.inf,
                           nested={"x": -math.inf}, ok=1.5)
        path = str(tmp_path / "nan.json")
        write_chrome_trace(path, tracer)
        # Must be strict JSON: chrome rejects bare NaN/Infinity literals.
        with open(path) as f:
            doc = json.loads(f.read())
        assert validate_chrome_trace(doc) == []
        (span_ev,) = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert span_ev["args"]["model_time_s"] == "nan"
        assert span_ev["args"]["gbs"] == "inf"
        assert span_ev["args"]["nested"]["x"] == "-inf"
        assert span_ev["args"]["ok"] == 1.5

    def test_validator_catches_violations(self):
        assert validate_chrome_trace({"nope": 1}) != []
        assert validate_chrome_trace({"traceEvents": "x"}) != []
        bad_phase = {"traceEvents": [{"name": "a", "ph": "Z", "ts": 0}]}
        assert any("bad phase" in e for e in validate_chrome_trace(bad_phase))
        no_ts = {"traceEvents": [{"name": "a", "ph": "X", "dur": 1}]}
        assert any("'ts'" in e for e in validate_chrome_trace(no_ts))
        no_dur = {"traceEvents": [{"name": "a", "ph": "X", "ts": 0}]}
        assert any("'dur'" in e for e in validate_chrome_trace(no_dur))
        bad_counter = {
            "traceEvents": [
                {"name": "c", "ph": "C", "ts": 0, "args": {"v": "high"}}
            ]
        }
        assert any("numbers" in e for e in validate_chrome_trace(bad_counter))

    def test_validator_accepts_good_doc(self):
        doc = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0.0, "dur": 5.0,
                 "pid": 1, "tid": 2, "args": {}},
                {"name": "e", "ph": "i", "ts": 1.0, "s": "t",
                 "pid": 1, "tid": 2},
                {"name": "c", "ph": "C", "ts": 2.0, "pid": 1, "tid": 0,
                 "args": {"value": 3}},
                {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
                 "args": {"name": "p"}},
            ]
        }
        assert validate_chrome_trace(doc) == []

    def test_unreadable_path(self, tmp_path):
        errors = validate_chrome_trace(str(tmp_path / "missing.json"))
        assert errors and "unreadable" in errors[0]


class TestJsonl:
    def test_records_parse_and_sort(self):
        tracer = _record_small_trace()
        buf = io.StringIO()
        write_jsonl(buf, tracer)
        lines = [json.loads(line) for line in buf.getvalue().splitlines()]
        assert len(lines) == 3 + 1 + 1  # spans + event + counter
        assert [r["ts_ns"] for r in lines] == sorted(r["ts_ns"] for r in lines)
        types = {r["type"] for r in lines}
        assert types == {"span", "event", "counter"}
        span_rec = next(r for r in lines if r["name"] == "grid.run")
        assert span_rec["parent_id"] is None
        assert {"pid", "tid", "span_id", "dur_ns", "attrs"} <= set(span_rec)

    def test_file_path_form(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(path, _record_small_trace())
        with open(path) as f:
            rows = [json.loads(line) for line in f]
        assert len(rows) == 5


class TestMetricsExport:
    def test_snapshot_round_trip_validates(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter_inc("model.dram_bytes", 4096)
        reg.gauge_set("arena.hit_rate", 0.75)
        reg.register_histogram("grid.point_s", [0.001, 0.1])
        reg.histogram_observe("grid.point_s", 0.01)
        path = str(tmp_path / "metrics.json")
        write_metrics(path, reg)
        assert validate_metrics_json(path) == []
        with open(path) as f:
            doc = json.load(f)
        assert doc["counters"]["model.dram_bytes"] == 4096
        assert doc["gauges"]["arena.hit_rate"] == 0.75
        assert doc["histograms"]["grid.point_s"]["count"] == 1

    def test_metrics_validator_catches_violations(self):
        assert validate_metrics_json([]) != []
        assert any(
            "missing section" in e for e in validate_metrics_json({})
        )
        bad = {
            "counters": {"c": "high"},
            "gauges": {},
            "histograms": {
                "h": {"boundaries": [2.0, 1.0], "bucket_counts": [1],
                      "count": 9, "sum": 0.0},
            },
        }
        errors = validate_metrics_json(bad)
        assert any("must be numeric" in e for e in errors)
        assert any("len(boundaries)+1" in e for e in errors)
        assert any("sorted" in e for e in errors)
