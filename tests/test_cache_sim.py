"""Tests of the set-associative LRU cache simulator."""

import pytest

from repro.machine import CacheHierarchy, SetAssociativeCache


def make(size=1024, line=64, ways=2):
    return SetAssociativeCache(size, line, ways)


class TestBasics:
    def test_geometry(self):
        c = make(1024, 64, 2)
        assert c.num_sets == 8

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 64)
        with pytest.raises(ValueError):
            SetAssociativeCache(0, 64)
        with pytest.raises(ValueError):
            SetAssociativeCache(192, 64, ways=4)

    def test_fully_associative(self):
        c = SetAssociativeCache(256, 64, ways=0)
        assert c.num_sets == 1 and c.ways == 4

    def test_cold_miss_then_hit(self):
        c = make()
        assert c.access(0) is False
        assert c.access(8) is True  # same line
        assert c.stats.misses == 1 and c.stats.hits == 1

    def test_capacity_eviction(self):
        # Fully associative, 4 lines: access 5 distinct lines then the
        # first again -> it was evicted (LRU).
        c = SetAssociativeCache(256, 64, ways=0)
        for i in range(5):
            c.access(i * 64)
        assert c.access(0) is False

    def test_lru_order(self):
        c = SetAssociativeCache(256, 64, ways=0)
        for i in range(4):
            c.access(i * 64)
        c.access(0)  # refresh line 0
        c.access(4 * 64)  # evicts line 1, not 0
        assert c.access(0) is True
        assert c.access(64) is False

    def test_conflict_misses(self):
        # Direct-mapped: two lines mapping to the same set thrash.
        c = SetAssociativeCache(512, 64, ways=1)
        a, b = 0, 512  # same set
        for _ in range(4):
            c.access(a)
            c.access(b)
        assert c.stats.misses == 8

    def test_writeback_accounting(self):
        c = SetAssociativeCache(128, 64, ways=0)  # 2 lines
        c.access(0, write=True)
        c.access(64)
        c.access(128)  # evicts dirty line 0
        assert c.stats.writebacks == 1
        c.flush()
        assert c.stats.writebacks == 1  # remaining lines were clean

    def test_access_range(self):
        c = make(2048, 64, 0)
        misses = c.access_range(0, 1024)
        assert misses == 16
        assert c.access_range(0, 1024) == 0


class TestHierarchy:
    def test_l2_filters_l3(self):
        l2 = SetAssociativeCache(256, 64, ways=0)
        l3 = SetAssociativeCache(4096, 64, ways=0)
        h = CacheHierarchy(l2, l3)
        h.access_range(0, 256)
        h.access_range(0, 256)  # L2 hits, L3 untouched
        assert l3.stats.accesses == 4
        assert h.dram_bytes() == 256

    def test_line_mismatch(self):
        with pytest.raises(ValueError):
            CacheHierarchy(
                SetAssociativeCache(256, 32), SetAssociativeCache(256, 64)
            )
