"""Tests of AMR box calculus and inter-level transfer operators."""

import numpy as np
import pytest

from repro.box import Box
from repro.stencil.transfer import (
    prolong_constant,
    prolong_linear,
    restrict_average,
)


class TestBoxRefinement:
    def test_refine_coarsen_roundtrip(self):
        b = Box.from_extents((2, -4, 0), (3, 5, 7))
        assert b.refine(2).coarsen(2) == b
        assert b.refine(4).coarsen(4) == b

    def test_refine_point_counts(self):
        b = Box.cube(4, 3)
        assert b.refine(2).num_points() == 8 * b.num_points()

    def test_coarsen_floor_semantics(self):
        b = Box.from_extents((1, 1), (3, 3))  # cells 1..3
        c = b.coarsen(2)
        assert c.lo.to_tuple() == (0, 0)
        assert c.hi.to_tuple() == (1, 1)

    def test_coarsenable(self):
        assert Box.from_extents((0, 0), (4, 4)).coarsenable(2)
        assert not Box.from_extents((1, 0), (4, 4)).coarsenable(2)
        assert Box.cube(8, 3).coarsenable(4)

    def test_invalid_ratio(self):
        b = Box.cube(4, 2)
        for fn in (b.coarsen, b.refine, b.coarsenable):
            with pytest.raises(ValueError):
                fn(0)

    def test_refinement_preserves_centering(self):
        fb = Box.cube(4, 2).face_box(0)
        assert fb.refine(2).centering == fb.centering


class TestRestriction:
    def test_constant_preserved(self):
        fine = np.full((8, 8, 8, 2), 3.0)
        coarse = restrict_average(fine, 2)
        assert coarse.shape == (4, 4, 4, 2)
        assert np.all(coarse == 3.0)

    def test_exact_conservation(self):
        rng = np.random.default_rng(0)
        fine = rng.random((8, 12, 4, 3))
        coarse = restrict_average(fine, 2)
        assert coarse.sum() * 8 == pytest.approx(fine.sum(), rel=1e-12)

    def test_ratio_4(self):
        fine = np.arange(16.0).reshape(16, 1)
        coarse = restrict_average(fine, 4, dim=1)
        assert coarse.shape == (4, 1)
        assert coarse[0, 0] == pytest.approx(1.5)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            restrict_average(np.zeros((6, 6)), 4, dim=2)


class TestProlongation:
    def test_constant_injection(self):
        coarse = np.arange(4.0).reshape(2, 2)
        fine = prolong_constant(coarse, 2, dim=2)
        assert fine.shape == (4, 4)
        assert np.all(fine[:2, :2] == coarse[0, 0])

    def test_restrict_of_prolong_is_identity(self):
        rng = np.random.default_rng(1)
        coarse = rng.random((4, 4, 2))
        for prolong in (prolong_constant, prolong_linear):
            fine = prolong(coarse, 2)
            back = restrict_average(fine, 2)
            assert np.allclose(back, coarse, atol=1e-12), prolong.__name__

    def test_linear_reproduces_linear_fields(self):
        # A linear coarse field prolongs to the exact linear fine field
        # in the interior (one-sided slopes differ at boundaries).
        x = np.arange(8.0)[:, None]
        coarse = np.broadcast_to(3.0 * x, (8, 8)).copy()
        fine = prolong_linear(coarse, 2, dim=2)
        # Fine cell i sits at coarse coordinate (i + 0.5)/2 - 0.5.
        xi = (np.arange(16) + 0.5) / 2 - 0.5
        expect = 3.0 * xi[:, None]
        assert np.allclose(fine[2:-2, :], np.broadcast_to(expect, (16, 16))[2:-2, :])

    def test_linear_beats_constant_on_smooth_data(self):
        # Treat coarse values as samples of a smooth field at coarse
        # cell centres; the slope-corrected prolongation lands closer
        # to the field at the fine centres than constant injection.
        def field(x):
            return np.sin(0.4 * x)

        xc = np.arange(16) + 0.5
        coarse = np.broadcast_to(field(xc)[:, None], (16, 8)).copy()
        xf = (np.arange(32) + 0.5) / 2
        exact = np.broadcast_to(field(xf)[:, None], (32, 16))
        fc = prolong_constant(coarse, 2, dim=2)
        fl = prolong_linear(coarse, 2, dim=2)
        err = lambda a: np.abs(a - exact)[2:-2].max()
        assert err(fl) < 0.5 * err(fc)
