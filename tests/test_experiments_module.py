"""Tests of the experiment definitions module itself."""

import pytest

from repro.bench import (
    FIG2_TO_4,
    FIG10_TO_12,
    fig1_ghost_ratio,
    scaling_figure,
    schedule_figure,
    table1,
)
from repro.bench.experiments import SeriesData
from repro.machine import IVY_BRIDGE, MAGNY_COURS, SANDY_BRIDGE


class TestFigureRegistry:
    def test_fig2_to_4_machines(self):
        assert FIG2_TO_4["fig2"][0] is MAGNY_COURS
        assert FIG2_TO_4["fig3"][0] is IVY_BRIDGE
        assert FIG2_TO_4["fig4"][0] is SANDY_BRIDGE

    def test_fig2_to_4_ot_lines_match_captions(self):
        # The best-OT line of each figure caption (tile size and
        # granularity as printed in the paper).
        v2 = FIG2_TO_4["fig2"][1]
        assert (v2.tile_size, v2.granularity) == (16, "P>=Box")
        v3 = FIG2_TO_4["fig3"][1]
        assert (v3.tile_size, v3.granularity) == (8, "P<Box")
        v4 = FIG2_TO_4["fig4"][1]
        assert (v4.tile_size, v4.granularity) == (16, "P<Box")

    def test_fig10_to_12_machines(self):
        assert FIG10_TO_12["fig10"] is MAGNY_COURS
        assert FIG10_TO_12["fig12"] is SANDY_BRIDGE


class TestExperimentOutputs:
    def test_scaling_figure_line_set(self):
        d = scaling_figure("fig4")
        assert len(d.lines) == 4
        assert d.x[-1] == 16
        labels = list(d.lines)
        assert labels[0] == "Baseline: P>=Box, N=16"
        assert "OT" in labels[-1]

    def test_schedule_figure_thread_axis(self):
        d = schedule_figure("fig11")
        assert d.x == [1, 2, 4, 8, 16, 20, 40]
        assert len(d.lines) == 7

    def test_unknown_figures(self):
        with pytest.raises(KeyError):
            scaling_figure("fig7")
        with pytest.raises(KeyError):
            schedule_figure("fig7")

    def test_table1_shape(self):
        rows = table1(n=64, tile=8, threads=4)
        assert len(rows) == 4
        assert all({"schedule", "flux", "velocity", "total_mb"} <= set(r) for r in rows)

    def test_fig1_custom_sizes(self):
        d = fig1_ghost_ratio((8, 16))
        assert d.x == [8, 16]
        assert all(len(ys) == 2 for ys in d.lines.values())

    def test_series_data_positive_times(self):
        d = scaling_figure("fig2")
        for label, ys in d.lines.items():
            assert all(y > 0 for y in ys), label
