"""Tests of Table I formulas and their consistency with the executors."""

import pytest

from repro.analysis import table1_for_variant, table1_rows, table1_temporaries
from repro.schedules import Variant, make_executor


class TestFormulas:
    def test_series(self):
        t = table1_temporaries("series", 16, c=5)
        assert t.flux == 5 * 17**3
        assert t.velocity == 17**3
        assert t.total == 6 * 17**3
        assert t.bytes() == t.total * 8

    def test_shift_fuse(self):
        t = table1_temporaries("shift_fuse", 128)
        assert t.flux == 2 + 256 + 2 * 128**2
        assert t.velocity == 3 * 129**3

    def test_wavefront_requires_tile(self):
        with pytest.raises(ValueError):
            table1_temporaries("blocked_wavefront", 128)

    def test_overlapped_threads_factor(self):
        t1 = table1_temporaries("overlapped", 128, tile=8, threads=1)
        t24 = table1_temporaries("overlapped", 128, tile=8, threads=24)
        assert t24.flux == 24 * t1.flux
        assert t24.velocity == 24 * t1.velocity

    def test_unknown_category(self):
        with pytest.raises(ValueError):
            table1_temporaries("nope", 16)

    def test_rows_order(self):
        rows = table1_rows(64)
        assert [r["category"] for r in rows] == [
            "series",
            "shift_fuse",
            "blocked_wavefront",
            "overlapped",
        ]

    def test_storage_hierarchy_as_paper(self):
        # Overlapped << fused < series for the paper's configuration.
        n, t = 128, 16
        series = table1_temporaries("series", n).total
        fused = table1_temporaries("shift_fuse", n).total
        ot = table1_temporaries("overlapped", n, tile=t).total
        assert ot < fused < series


class TestExecutorConsistency:
    """Executors' self-declared temporaries track Table I."""

    @pytest.mark.parametrize("cl", ["CLO", "CLI"])
    def test_series_executor(self, cl):
        v = Variant("series", "P>=Box", cl)
        ex = make_executor(v)
        decl = ex.logical_temporaries(16)
        t = table1_for_variant(v, 16)
        assert decl["flux"] == t.flux
        # CLO needs no velocity temporary (§IV-A).
        if cl == "CLO":
            assert decl["velocity"] == 0
        else:
            assert decl["velocity"] == t.velocity

    def test_shift_fuse_executor(self):
        v = Variant("shift_fuse", "P>=Box", "CLO")
        decl = make_executor(v).logical_temporaries(32)
        t = table1_for_variant(v, 32)
        assert decl["flux"] == t.flux
        assert decl["velocity"] == t.velocity

    def test_overlapped_executor_tile_scale(self):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse")
        decl = make_executor(v).logical_temporaries(64)
        # Per-thread scratch is tile-sized, independent of N.
        assert decl == make_executor(v).logical_temporaries(128)
        assert decl["velocity"] == 3 * 9**3
