"""Tests of the time-dependent solver layer: conservation, convergence
order, schedule independence across a full integration."""

import numpy as np
import pytest

from repro.box import Box, LevelData, ProblemDomain, decompose_domain
from repro.exemplar import ExemplarProblem
from repro.schedules import Variant
from repro.solver import AdvectionOperator, ExemplarOperator, TimeIntegrator


def make_level(n, box, ncomp=1, dim=3):
    domain = ProblemDomain(Box.cube(n, dim))
    layout = decompose_domain(domain, box)
    return LevelData(layout, ncomp=ncomp, ghost=2)


def sine_mode(n):
    k = 2.0 * np.pi / n
    return lambda x, y, z, c: np.sin(k * x) * np.cos(k * y) + 0 * z


class TestAdvection:
    def test_conservation_euler(self):
        u = make_level(16, 8)
        u.fill_from_function(sine_mode(16))
        op = AdvectionOperator((1.0, 0.5, 0.25))
        ti = TimeIntegrator(u, op, scheme="euler")
        mass0 = ti.total_mass()
        ti.advance(op.max_stable_dt(0.2), 20)
        assert np.allclose(ti.total_mass(), mass0, atol=1e-10)
        assert ti.stats.steps == 20
        assert ti.stats.operator_evals == 20

    def test_conservation_rk4(self):
        u = make_level(16, 8)
        u.fill_from_function(sine_mode(16))
        op = AdvectionOperator((1.0, 0.0, 0.0))
        ti = TimeIntegrator(u, op, scheme="rk4")
        mass0 = ti.total_mass()
        ti.advance(0.2, 10)
        assert np.allclose(ti.total_mass(), mass0, atol=1e-10)
        assert ti.stats.operator_evals == 40

    def test_periodic_translation_rk4(self):
        # Advecting a profile one full period returns it (to the
        # scheme's accuracy).
        n = 32
        u = make_level(n, 16)
        u.fill_from_function(sine_mode(n))
        before = u.to_global_array().copy()
        op = AdvectionOperator((1.0, 0.0, 0.0))
        ti = TimeIntegrator(u, op, scheme="rk4")
        dt = 0.5
        ti.advance(dt, int(n / dt))  # time n at speed 1: one period
        err = np.abs(u.to_global_array() - before).max()
        assert err < 1e-3  # 4th-order dispersion over 64 steps

    def test_spatial_convergence_is_fourth_order(self):
        # Refine the grid with dt shrunk alongside: error ratio between
        # n and 2n should approach 2^4 for the 4th-order faces.
        errs = []
        for n in (8, 16, 32):
            u = make_level(n, n // 2)
            k = 2.0 * np.pi / n

            def exact(x, y, z, c, t=0.0, n=n, k=k):
                return np.sin(k * (x - t))

            u.fill_from_function(lambda x, y, z, c: exact(x, y, z, c))
            op = AdvectionOperator((1.0, 0.0, 0.0), dx=1.0)
            ti = TimeIntegrator(u, op, scheme="rk4")
            total_t = float(n) / 8.0  # same physical time in dx units? keep fixed below
            total_t = 4.0
            steps = max(8, n // 2)
            ti.advance(total_t / steps, steps)
            g = u.to_global_array()
            xg = np.arange(n)[:, None, None, None]
            ref = exact(xg, 0, 0, 0, t=total_t)
            errs.append(np.abs(g - ref).max())
        r1 = errs[0] / errs[1]
        r2 = errs[1] / errs[2]
        assert r1 > 10  # ~16 for clean 4th order
        assert r2 > 10

    def test_cfl_helper(self):
        op = AdvectionOperator((2.0, 0.0, 0.0), dx=0.5)
        assert op.max_stable_dt(0.5) == pytest.approx(0.125)
        with pytest.raises(ValueError):
            AdvectionOperator((0.0, 0.0, 0.0)).max_stable_dt()

    def test_velocity_dim_mismatch(self):
        u = make_level(8, 8)
        op = AdvectionOperator((1.0, 1.0))
        with pytest.raises(ValueError):
            op.increments(u)


class TestExemplarOperator:
    def test_matches_kernel_increment(self):
        p = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8)
        phi0 = p.make_phi0()
        op = ExemplarOperator()
        incs = op.increments(phi0)
        from repro.exemplar import reference_kernel

        box = p.layout.box(0)
        phi_g = np.asarray(phi0[0].window(box.grow(2)))
        expect = reference_kernel(phi_g) - phi_g[2:-2, 2:-2, 2:-2, :]
        assert np.allclose(incs[0], expect, atol=1e-14)

    def test_schedule_independent_integration(self):
        results = []
        for variant in (
            Variant("series", "P>=Box", "CLO"),
            Variant("overlapped", "P<Box", "CLO", tile_size=4,
                    intra_tile="shift_fuse"),
        ):
            p = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8)
            u = p.make_phi0(exchange=False)
            ti = TimeIntegrator(u, ExemplarOperator(variant), scheme="euler")
            ti.advance(1e-3, 5)
            results.append(u.to_global_array())
        assert np.array_equal(results[0], results[1])

    def test_dx_scaling(self):
        p = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8)
        phi0 = p.make_phi0()
        a = ExemplarOperator(dx=1.0).increments(phi0)
        b = ExemplarOperator(dx=2.0).increments(phi0)
        assert np.allclose(b[0], a[0] / 2.0)


class TestIntegratorValidation:
    def test_unknown_scheme(self):
        u = make_level(8, 8)
        with pytest.raises(ValueError):
            TimeIntegrator(u, AdvectionOperator((1, 1, 1)), scheme="ab2")

    def test_ghost_check(self):
        domain = ProblemDomain(Box.cube(8, 3))
        layout = decompose_domain(domain, 8)
        shallow = LevelData(layout, ncomp=1, ghost=1)
        with pytest.raises(ValueError):
            TimeIntegrator(shallow, AdvectionOperator((1, 1, 1)))

    def test_dt_positive(self):
        u = make_level(8, 8)
        ti = TimeIntegrator(u, AdvectionOperator((1, 1, 1)))
        with pytest.raises(ValueError):
            ti.step(0.0)
