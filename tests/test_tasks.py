"""Tests of the task-graph primitives."""

import pytest

from repro.schedules import Access, Task, TaskGraph


class TestAccess:
    def test_bytes(self):
        a = Access("phi0", points=100, comps=5, mode="r")
        assert a.elements == 500
        assert a.bytes == 4000

    def test_rw_double(self):
        a = Access("phi1", points=10, comps=1, mode="rw")
        assert a.bytes == 160

    def test_validation(self):
        with pytest.raises(ValueError):
            Access("x", points=1, mode="x")
        with pytest.raises(ValueError):
            Access("x", points=-1)
        with pytest.raises(ValueError):
            Access("x", points=1, comps=0)


class TestTaskGraph:
    def _diamond(self):
        g = TaskGraph()
        a = g.add("a", 1.0)
        b = g.add("b", 1.0, deps=[a.tid])
        c = g.add("c", 1.0, deps=[a.tid])
        g.add("d", 1.0, deps=[b.tid, c.tid])
        return g

    def test_add_and_query(self):
        g = self._diamond()
        assert len(g) == 4
        assert g.total_flops() == 4.0
        assert g[3].deps == [1, 2]

    def test_future_dep_rejected(self):
        g = TaskGraph()
        with pytest.raises(ValueError):
            g.add("bad", 1.0, deps=[0])

    def test_critical_path(self):
        g = self._diamond()
        assert g.critical_path_length() == 3
        assert g.max_width() == 2

    def test_successors(self):
        g = self._diamond()
        succ = g.successors()
        assert succ[0] == [1, 2]
        assert succ[3] == []

    def test_stream_vs_scratch_bytes(self):
        g = TaskGraph()
        t = g.add(
            "t",
            10.0,
            accesses=[
                Access("phi0", 10, 5, "r"),
                Access("flux", 10, 5, "rw", scratch=True),
            ],
        )
        assert t.stream_bytes() == 400
        assert t.scratch_traffic_bytes() == 800
        assert g.total_stream_bytes() == 400
