"""The differential correctness harness: config space, check families,
shrinking, and the seeded runner.

The harness is itself load-bearing (CI pins a seed on it), so its
generator determinism, serialization round-trips, and shrinker
convergence get direct coverage here; the check families run on small
fixed configs to stay fast.
"""

import json
import random

import pytest

from repro.verify import (
    FAMILIES,
    VerifyConfig,
    check_bitwise,
    check_engines,
    check_fast_path,
    check_invariants,
    check_metamorphic,
    load_repro,
    random_config,
    replay_repro,
    run_check,
    run_verification,
    shrink,
    variant_by_short_name,
    variant_registry,
)


def small_config(**overrides):
    base = dict(
        family="bitwise",
        dim=2,
        box_size=8,
        domain_mult=(2, 1),
        ncomp=3,
        ghost=2,
        periodic=(True, True),
        variants=("shift_fuse-PltBox-cli", "blocked_wavefront-PltBox-clo-t4"),
        machine="sandy_bridge",
        threads=2,
        arena=False,
        pool=False,
        tracing=False,
        data_seed=42,
    )
    base.update(overrides)
    return VerifyConfig(**base)


class TestConfig:
    def test_registry_covers_practical_variants(self):
        from repro.schedules.variants import practical_variants

        reg = variant_registry()
        for v in practical_variants():
            assert reg[v.short_name] == v
        assert variant_by_short_name("shift_fuse-PltBox-cli").category == "shift_fuse"
        with pytest.raises(KeyError):
            variant_by_short_name("no-such-variant")

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ValueError):
            small_config(family="nope")
        with pytest.raises(ValueError):
            small_config(ghost=1)
        with pytest.raises(ValueError):
            small_config(ncomp=2)  # must exceed dim
        with pytest.raises(ValueError):
            small_config(periodic=(True,))  # wrong arity
        with pytest.raises(KeyError):
            small_config(variants=("bogus",))

    def test_json_roundtrip_is_identity(self):
        cfg = small_config(arena=True, tracing=True, periodic=(False, True))
        assert VerifyConfig.from_json(cfg.to_json()) == cfg

    def test_domain_cells_and_label(self):
        cfg = small_config(domain_mult=(2, 3))
        assert cfg.domain_cells == (16, 24)
        assert "16x24" in cfg.label()

    def test_generator_is_deterministic(self):
        rng_a, rng_b = random.Random(7), random.Random(7)
        a = [random_config(rng_a) for _ in range(20)]
        b = [random_config(rng_b) for _ in range(20)]
        assert a == b
        assert len({c.label() for c in a}) > 1  # actually varied

    def test_generator_respects_constraints(self):
        rng = random.Random(3)
        for _ in range(50):
            cfg = random_config(rng)
            from repro.machine.spec import machine_by_name

            assert cfg.threads <= machine_by_name(cfg.machine).max_threads
            assert cfg.ncomp > cfg.dim
            assert all(
                v.applicable_to_box(cfg.box_size)
                for v in cfg.variant_objects()
            )

    def test_family_override(self):
        rng = random.Random(5)
        assert all(
            random_config(rng, family="engines").family == "engines"
            for _ in range(5)
        )


class TestCheckFamilies:
    def test_bitwise_passes_small(self):
        assert check_bitwise(small_config()) == []

    def test_bitwise_passes_under_toggles(self):
        cfg = small_config(arena=True, pool=True, tracing=True)
        assert check_bitwise(cfg) == []

    def test_engines_passes_small(self):
        cfg = small_config(family="engines", variants=("shift_fuse-PltBox-cli", "series-PgeBox-clo"))
        assert check_engines(cfg) == []

    def test_invariants_passes_small(self):
        cfg = small_config(family="invariants", variants=("blocked_wavefront-PltBox-clo-t4", "shift_fuse-PltBox-cli"))
        assert check_invariants(cfg) == []

    def test_metamorphic_passes_small(self):
        cfg = small_config(family="metamorphic", ncomp=5)
        assert check_metamorphic(cfg) == []

    def test_metamorphic_nonperiodic_skips_shift(self):
        # Non-periodic axes: the periodic-shift relation does not apply
        # but translation/permutation still must hold.
        cfg = small_config(family="metamorphic", periodic=(False, True), ncomp=5)
        assert check_metamorphic(cfg) == []

    def test_fast_path_passes_small(self):
        cfg = small_config(
            family="fast_path",
            variants=("shift_fuse-PltBox-cli", "series-PgeBox-clo"),
        )
        assert check_fast_path(cfg) == []

    def test_fast_path_passes_under_toggles(self):
        cfg = small_config(
            family="fast_path",
            variants=("blocked_wavefront-PltBox-clo-t4",),
            arena=True,
            tracing=True,
        )
        assert check_fast_path(cfg) == []

    def test_fast_path_in_families(self):
        assert "fast_path" in FAMILIES
        cfg = small_config(family="fast_path")
        assert run_check(cfg) == []

    def test_dispatch_unknown_family(self):
        cfg = small_config()
        object.__setattr__(cfg, "family", "weird")
        with pytest.raises(ValueError):
            run_check(cfg)

    def test_bitwise_detects_divergence(self):
        # A check family must actually be able to fail: corrupt one
        # variant's output through fault injection and expect a report.
        from repro.resilience.faults import FaultPlan, FaultSpec, inject_faults

        cfg = small_config(pool=True, variants=("shift_fuse-PltBox-cli",))
        plan = FaultPlan([FaultSpec("pool", "corrupt", count=1)])
        with inject_faults(plan):
            failures = check_bitwise(
                cfg.simplified()
            )
        # The pool's watchdog may recover the corruption; either a
        # clean recovery (no failures) or a divergence report is
        # acceptable — what is not acceptable is a crash.
        assert isinstance(failures, list)


class TestShrink:
    def test_shrinks_to_single_variant_and_minimal_axes(self):
        cfg = small_config(
            variants=("shift_fuse-PltBox-cli", "blocked_wavefront-PltBox-clo-t4", "series-PgeBox-clo"),
            domain_mult=(2, 2),
            ncomp=6,
            threads=4,
            ghost=3,
            arena=True,
            pool=True,
            tracing=True,
            periodic=(False, True),
        )

        def fails(c):
            return "shift_fuse-PltBox-cli" in c.variants

        small = shrink(cfg, fails=fails)
        assert small.variants == ("shift_fuse-PltBox-cli",)
        assert small.domain_mult == (1, 1)
        assert small.ncomp == cfg.dim + 1
        assert small.threads == 1
        assert small.ghost == 2
        assert not (small.arena or small.pool or small.tracing)
        assert all(small.periodic)
        assert fails(small)

    def test_shrink_keeps_failing_property(self):
        cfg = small_config(variants=("shift_fuse-PltBox-cli", "blocked_wavefront-PltBox-clo-t4"), ncomp=5)

        def fails(c):
            return c.ncomp >= 4  # shrinking ncomp below 4 loses the bug

        small = shrink(cfg, fails=fails)
        assert fails(small)
        assert small.ncomp == 4 or small.ncomp == 5

    def test_shrink_never_returns_passing_config(self):
        cfg = small_config(variants=("shift_fuse-PltBox-cli", "series-PgeBox-clo"))
        calls = []

        def fails(c):
            calls.append(c)
            return c == cfg  # only the original fails

        assert shrink(cfg, fails=fails) == cfg
        assert calls  # candidates were tried

    def test_shrink_counts_crash_as_failure(self):
        cfg = small_config(variants=("shift_fuse-PltBox-cli", "series-PgeBox-clo"))
        seen = []

        def fails(c):
            seen.append(c)
            if len(c.variants) == 1:
                raise RuntimeError("boom")
            return True

        # Injected predicate crashes on the shrunk candidate; the
        # default predicate treats crashes as failing, but an injected
        # one propagates — exercised via the runner path instead.
        with pytest.raises(RuntimeError):
            shrink(cfg, fails=fails)

    def test_shrink_respects_attempt_cap(self):
        cfg = small_config(
            variants=("shift_fuse-PltBox-cli", "blocked_wavefront-PltBox-clo-t4", "series-PgeBox-clo"), ncomp=6, threads=4
        )
        count = 0

        def fails(c):
            nonlocal count
            count += 1
            return True

        shrink(cfg, fails=fails, max_attempts=5)
        assert count <= 5


class TestRunner:
    def test_clean_run_reports_ok(self, tmp_path):
        report = run_verification(
            seed=11, cases=4, out_dir=str(tmp_path), check_fn=lambda c: []
        )
        assert report.ok and report.num_cases == 4
        assert not list(tmp_path.iterdir())  # no repro files when clean
        assert "all checks passed" in report.summary()

    def test_families_round_robin(self):
        cases = 2 * len(FAMILIES)
        report = run_verification(seed=11, cases=cases, check_fn=lambda c: [])
        fams = [c.config.family for c in report.cases]
        assert fams == list(FAMILIES) * 2

    def test_family_restriction(self):
        report = run_verification(
            seed=11, cases=3, families=["engines"], check_fn=lambda c: []
        )
        assert all(c.config.family == "engines" for c in report.cases)
        with pytest.raises(ValueError):
            run_verification(seed=1, cases=1, families=["bogus"])

    def test_failure_is_shrunk_and_serialized(self, tmp_path):
        def check(c):
            return ["synthetic: always fails"] if c.family == "bitwise" else []

        report = run_verification(
            seed=11, cases=4, out_dir=str(tmp_path), check_fn=check
        )
        assert not report.ok
        assert len(report.failures) == 1
        failing = report.failures[0]
        assert failing.shrunk is not None
        assert len(failing.shrunk.variants) == 1
        assert failing.repro_path is not None
        doc = json.loads(open(failing.repro_path).read())
        assert doc["failures"] == ["synthetic: always fails"]
        assert doc["config"] == failing.config.to_dict()
        assert doc["shrunk_config"] == failing.shrunk.to_dict()
        assert "FAILED" in report.summary()

    def test_crashing_check_is_a_failure(self):
        def check(c):
            raise RuntimeError("kaboom")

        report = run_verification(seed=11, cases=2, do_shrink=False, check_fn=check)
        assert not report.ok
        assert all("kaboom" in c.failures[0] for c in report.cases)

    def test_repro_roundtrip_and_replay(self, tmp_path):
        def check(c):
            return ["synthetic"] if c.family == "engines" else []

        report = run_verification(
            seed=13, cases=8, out_dir=str(tmp_path), check_fn=check
        )
        path = report.failures[0].repro_path
        cfg, doc = load_repro(path)
        # load_repro prefers the shrunk config.
        assert cfg == report.failures[0].shrunk
        # Replay runs the *real* check on that config — which passes,
        # because the synthetic failure is not a real bug.
        assert replay_repro(path) == []

    def test_seeded_runs_are_reproducible(self):
        a = run_verification(seed=99, cases=6, check_fn=lambda c: [])
        b = run_verification(seed=99, cases=6, check_fn=lambda c: [])
        assert [c.config for c in a.cases] == [c.config for c in b.cases]


class TestRealHarnessSmoke:
    """A tiny real end-to-end run — every family, real checks."""

    def test_small_real_run_is_clean(self, tmp_path):
        report = run_verification(seed=2014, cases=8, out_dir=str(tmp_path))
        assert report.ok, report.summary()
        by_fam = report.by_family()
        assert set(by_fam) == set(FAMILIES)
