"""Tests of the ASCII plot renderer and report edge cases."""

import pytest

from repro.bench import SeriesData, ascii_plot, format_series


def make_data():
    d = SeriesData("T", "threads", "time", x=[1, 2, 4, 8])
    d.add_line("ideal", [8.0, 4.0, 2.0, 1.0])
    d.add_line("flat", [8.0, 8.0, 8.0, 8.0])
    return d


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        text = ascii_plot(make_data())
        assert "a = ideal" in text and "b = flat" in text
        assert "threads: 1 .. 8" in text

    def test_ideal_line_descends(self):
        text = ascii_plot(make_data(), height=10, width=40)
        rows = [l.split("|")[1] for l in text.splitlines() if "|" in l]
        # 'a' marker appears in multiple distinct rows (a sloped line);
        # 'b' stays on one row.
        a_rows = [i for i, r in enumerate(rows) if "a" in r]
        b_rows = [i for i, r in enumerate(rows) if "b" in r and "a" not in r.replace("a", "")]
        assert len(set(a_rows)) >= 3
        flat_rows = [i for i, r in enumerate(rows) if "b" in r]
        assert len(set(flat_rows)) == 1

    def test_log_axis_bounds_printed(self):
        text = ascii_plot(make_data())
        assert "8" in text and "1" in text

    def test_empty_series(self):
        d = SeriesData("E", "x", "y", x=[1, 2])
        assert "(no data)" in ascii_plot(d)

    def test_nonpositive_filtered(self):
        d = SeriesData("Z", "x", "y", x=[1, 2])
        d.add_line("zeros", [0.0, 0.0])
        assert "(no positive data)" in ascii_plot(d)

    def test_linear_mode(self):
        text = ascii_plot(make_data(), logy=False)
        assert "a = ideal" in text

    def test_degenerate_single_value(self):
        d = SeriesData("S", "x", "y", x=[1])
        d.add_line("one", [5.0])
        text = ascii_plot(d)
        assert "a = one" in text


class TestFormatSeriesEdge:
    def test_no_lines(self):
        d = SeriesData("T", "x", "y", x=[1])
        text = format_series(d)
        assert "T" in text
