"""Tests of the model-driven autotuner."""

import pytest

from repro.machine import IVY_BRIDGE, MAGNY_COURS, SANDY_BRIDGE
from repro.schedules import Variant
from repro.tuning import Autotuner, TuningResult

SMALL = (64, 64, 64)


class TestTuning:
    def test_best_beats_baseline_at_128(self):
        tuner = Autotuner(MAGNY_COURS)
        result = tuner.tune(128)
        assert result.best.variant.category == "overlapped"
        assert result.speedup_over_baseline() > 3.0

    def test_recommend_small_box_over_boxes(self):
        tuner = Autotuner(MAGNY_COURS)
        v = tuner.recommend(16)
        assert v.granularity == "P>=Box"

    def test_pruning_reduces_evaluations(self):
        with_prune = Autotuner(SANDY_BRIDGE, SMALL, prune=True).tune(32)
        without = Autotuner(SANDY_BRIDGE, SMALL, prune=False).tune(32)
        assert len(with_prune.pruned) > 0
        assert len(without.pruned) == 0
        assert len(with_prune.entries) == len(without.entries)

    def test_pruning_never_drops_winner(self):
        # The analytic pre-filters must keep whatever full search finds.
        for machine in (MAGNY_COURS, IVY_BRIDGE):
            for n in (16, 128):
                full = Autotuner(machine, prune=False).tune(n)
                pruned = Autotuner(machine, prune=True).tune(n)
                assert pruned.best.time_s == pytest.approx(
                    full.best.time_s, rel=1e-9
                ), (machine.name, n)

    def test_prune_reasons_recorded(self):
        result = Autotuner(MAGNY_COURS).tune(128)
        assert all(e.prune_reason for e in result.pruned)

    def test_ranked_order(self):
        result = Autotuner(SANDY_BRIDGE, SMALL).tune(16)
        times = [e.time_s for e in result.evaluated]
        assert times == sorted(times)

    def test_tile_sweep_prefers_8_or_16(self):
        # The paper: "in general tile sizes of 8 and 16 were the most
        # efficient."
        tuner = Autotuner(MAGNY_COURS)
        best = tuner.recommend(128)
        assert best.tile_size in (8, 16)

    def test_tune_box_sizes(self):
        out = Autotuner(SANDY_BRIDGE, SMALL).tune_box_sizes((16, 32))
        assert set(out) == {16, 32}
        assert all(isinstance(r, TuningResult) for r in out.values())

    def test_no_applicable_variants(self):
        tuner = Autotuner(SANDY_BRIDGE, SMALL)
        with pytest.raises(ValueError):
            tuner.tune(16, variants=[
                Variant("overlapped", "P<Box", "CLO", tile_size=16,
                        intra_tile="basic")
            ])

    def test_custom_variant_pool(self):
        tuner = Autotuner(SANDY_BRIDGE, SMALL, prune=False)
        pool = [Variant("series", "P>=Box", "CLO"),
                Variant("shift_fuse", "P>=Box", "CLO")]
        result = tuner.tune(32, variants=pool)
        assert len(result.entries) == 2

    def test_best_raises_when_all_pruned(self):
        r = TuningResult("m", 16, 4)
        with pytest.raises(ValueError):
            r.best
