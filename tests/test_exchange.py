"""Integration tests for ExchangeCopier and LevelData ghost exchange."""

import numpy as np
import pytest

from repro.box import (
    Box,
    ExchangeCopier,
    LevelData,
    ProblemDomain,
    decompose_domain,
)


def _level(n=8, box=4, dim=3, ncomp=1, ghost=2, periodic=True):
    domain = ProblemDomain(Box.cube(n, dim), periodic=(periodic,) * dim)
    lay = decompose_domain(domain, box)
    return LevelData(lay, ncomp=ncomp, ghost=ghost)


def _global_index_fill(ld):
    """Fill each valid cell with a unique encoding of its global index."""
    weights = [1, 1000, 1000_000][: ld.layout.domain.dim]

    def fn(*grids_and_comp):
        *grids, comp = grids_and_comp
        acc = 0
        for g, w in zip(grids, weights):
            acc = acc + g * w
        return acc + comp * 10**9

    ld.fill_from_function(fn)
    return weights


class TestCopierPlan:
    def test_zero_ghost_empty_plan(self):
        ld = _level(ghost=0)
        copier = ExchangeCopier(ld.layout, 0)
        assert copier.items == []
        assert copier.total_ghost_points() == 0

    def test_negative_ghost_rejected(self):
        ld = _level()
        with pytest.raises(ValueError):
            ExchangeCopier(ld.layout, -1)

    def test_plan_covers_all_ghosts_exactly_once(self):
        ld = _level(n=8, box=4, dim=2, ghost=2)
        copier = ExchangeCopier(ld.layout, 2)
        per_box_ghosts = 8 * 8 - 4 * 4
        assert copier.total_ghost_points() == per_box_ghosts * len(ld.layout)
        # No destination point covered twice.
        for idx in ld.layout:
            seen = np.zeros((8, 8), dtype=int)
            grown = ld.layout.box(idx).grow(2)
            for item in copier.items:
                if item.dst != idx:
                    continue
                sl = item.dst_region.slices_within(grown)
                seen[sl] += 1
            assert seen.max() == 1

    def test_off_rank_accounting(self):
        domain = ProblemDomain(Box.cube(8, 2))
        lay_1rank = decompose_domain(domain, 4, num_ranks=1)
        lay_4rank = decompose_domain(domain, 4, num_ranks=4)
        c1 = ExchangeCopier(lay_1rank, 1)
        c4 = ExchangeCopier(lay_4rank, 1)
        assert c1.off_rank_points() == 0
        assert c4.off_rank_points() == c4.total_ghost_points()

    def test_bytes_per_exchange(self):
        ld = _level(dim=2)
        copier = ld.copier()
        assert copier.bytes_per_exchange(ncomp=3) == copier.total_ghost_points() * 24


class TestExchangeCorrectness:
    @pytest.mark.parametrize("dim", [2, 3])
    def test_periodic_ghosts_match_wrapped_cells(self, dim):
        ld = _level(n=8, box=4, dim=dim, ncomp=2, ghost=2)
        weights = _global_index_fill(ld)
        ld.exchange()
        for idx in ld.layout:
            box = ld.layout.box(idx)
            grown = box.grow(2)
            fab = ld[idx]
            # Check the low-corner ghost diagonal wraps correctly.
            dom = ld.layout.domain
            for point_off in range(-2, 0):
                probe = box.lo + point_off
                image = dom.image_of(probe)
                got = fab.window(Box(probe, probe), comp=0).ravel()[0]
                expect = sum(image[d] * weights[d] for d in range(dim))
                assert got == expect

    def test_single_box_self_exchange(self):
        # One box on a periodic domain exchanges with itself through
        # every boundary.
        ld = _level(n=6, box=6, dim=2, ghost=2)
        weights = _global_index_fill(ld)
        ld.exchange()
        fab = ld[0]
        got = fab.window(Box.from_extents((-2, -2), (1, 1)), comp=0)
        assert got[0, 0] == 4 * weights[0] + 4 * weights[1]

    def test_exchange_idempotent(self):
        ld = _level(dim=2)
        _global_index_fill(ld)
        ld.exchange()
        snapshot = [fab.data.copy() for fab in ld.fabs]
        ld.exchange()
        for before, fab in zip(snapshot, ld.fabs):
            assert np.array_equal(before, fab.data)

    def test_stats_accumulate(self):
        ld = _level(dim=2)
        ld.exchange()
        ld.exchange()
        assert ld.stats.exchanges == 2
        assert ld.stats.points == 2 * ld.copier().total_ghost_points()
        assert ld.stats.bytes == ld.stats.points * ld.ncomp * 8

    def test_zero_ghost_exchange_noop(self):
        ld = _level(ghost=0)
        ld.exchange()
        assert ld.stats.exchanges == 0


class TestLevelData:
    def test_to_global_array_roundtrip(self):
        ld = _level(n=8, box=4, dim=2, ncomp=2)
        _global_index_fill(ld)
        g = ld.to_global_array()
        assert g.shape == (8, 8, 2)
        assert g[3, 5, 0] == 3 + 5000

    def test_norm_over_valid_cells_only(self):
        ld = _level(n=4, box=4, dim=2, ncomp=1, ghost=2)
        ld.set_val(1.0)  # sets ghosts too
        assert ld.norm(2) == pytest.approx(4.0)  # sqrt(16 cells)
        assert ld.norm(0) == 1.0

    def test_ghost_requirement(self):
        ld = _level(dim=2, ghost=1)
        assert ld[0].box.size() == (6, 6)
