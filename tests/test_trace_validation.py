"""Cross-validation: the analytic miss-fraction model vs the LRU cache
simulator on traces with the schedules' access structure."""

import pytest

from repro.analysis import miss_fraction
from repro.machine import SetAssociativeCache
from repro.machine.trace import (
    ArrayLayout,
    measure_dram_bytes,
    replay,
    scratch_write_read_trace,
    stencil_sweep_trace,
    stream_trace,
)

LINE = 64


def cache(kb):
    return SetAssociativeCache(kb * 1024, LINE, ways=8)


class TestStreaming:
    def test_stream_is_compulsory_only(self):
        layout = ArrayLayout(0, (64, 64))
        c = cache(16)
        replay(stream_trace(layout), c)
        # One miss per line regardless of cache size.
        assert c.stats.misses == layout.nbytes // LINE

    def test_second_pass_hits_if_fits(self):
        layout = ArrayLayout(0, (32, 32))  # 8 KB
        c = cache(16)
        replay(stream_trace(layout), c)
        before = c.stats.misses
        replay(stream_trace(layout), c)
        assert c.stats.misses == before

    def test_second_pass_misses_if_too_big(self):
        layout = ArrayLayout(0, (128, 128))  # 128 KB
        c = cache(16)
        replay(stream_trace(layout), c)
        before = c.stats.misses
        replay(stream_trace(layout), c)
        extra = c.stats.misses - before
        # Analytic model: full reread misses ~ (1 - cache/ws).
        predicted = miss_fraction(layout.nbytes, 16 * 1024)
        measured = extra / (layout.nbytes // LINE)
        assert measured == pytest.approx(predicted, abs=0.15)


class TestStencilWindow:
    """The Eq. 6 pattern: planes reread at a 3-plane distance hit or
    miss depending on whether the 4-plane window fits."""

    def _miss_per_plane(self, shape, axis, kb):
        layout = ArrayLayout(0, shape)
        c = cache(kb)
        replay(stencil_sweep_trace(layout, axis), c)
        planes = shape[axis] - 3
        lines_per_plane = (layout.nbytes // shape[axis]) // LINE
        return c.stats.misses / (4 * planes * lines_per_plane)

    def test_window_fits_mostly_hits(self):
        # 4 planes of 32x32 doubles = 32 KB <= 64 KB cache.
        rate = self._miss_per_plane((32, 32, 16), 2, 64)
        # Compulsory misses only: each plane fetched ~once per 4 touches.
        assert rate < 0.35

    def test_window_spills_mostly_misses(self):
        # 4 planes of 64x64 doubles = 128 KB >> 16 KB cache.
        rate = self._miss_per_plane((64, 64, 12), 2, 16)
        assert rate > 0.8

    def test_analytic_window_boundary(self):
        # The analytic window for axis 2 of a (28,28,...) ghosted array
        # is 4*(32)*(32)*8 using ghosted extents; here we use the raw
        # shape directly so compare against 4*shape[0]*shape[1]*8.
        shape = (48, 48, 12)
        window = 4 * shape[0] * shape[1] * 8
        hit_kb = (window // 1024) * 2
        miss_kb = max(4, (window // 1024) // 8)
        assert self._miss_per_plane(shape, 2, hit_kb) < 0.35
        assert self._miss_per_plane(shape, 2, miss_kb) > 0.6


class TestScratchSpill:
    def test_scratch_fits_cheap(self):
        layout = ArrayLayout(0, (32, 32))  # 8 KB
        dram = measure_dram_bytes(scratch_write_read_trace(layout), cache(64))
        # Write-allocate fill + final flush writeback: ~2x the array.
        assert dram <= 2.5 * layout.nbytes

    def test_scratch_spills_expensive(self):
        layout = ArrayLayout(0, (256, 64))  # 128 KB
        dram = measure_dram_bytes(scratch_write_read_trace(layout), cache(8))
        # Fill, writeback, reread fill, (clean) flush: ~3x.
        assert dram > 2.8 * layout.nbytes
