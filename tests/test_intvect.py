"""Unit tests for IntVect arithmetic and comparisons."""

import pytest

from repro.box import IntVect, ones_vector, unit_vector, zero_vector


class TestConstruction:
    def test_basic(self):
        iv = IntVect((1, 2, 3))
        assert iv.dim == 3
        assert tuple(iv) == (1, 2, 3)
        assert iv[1] == 2
        assert len(iv) == 3

    def test_coerces_to_int(self):
        iv = IntVect((1.0, 2.0))
        assert iv.to_tuple() == (1, 2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IntVect(())

    def test_immutable(self):
        iv = IntVect((1, 2))
        with pytest.raises(AttributeError):
            iv._v = (3, 4)


class TestArithmetic:
    def test_add_sub(self):
        a, b = IntVect((1, 2, 3)), IntVect((4, 5, 6))
        assert a + b == IntVect((5, 7, 9))
        assert b - a == IntVect((3, 3, 3))

    def test_scalar_broadcast(self):
        a = IntVect((1, 2, 3))
        assert a + 1 == IntVect((2, 3, 4))
        assert a * 2 == IntVect((2, 4, 6))
        assert 10 - a == IntVect((9, 8, 7))

    def test_floordiv(self):
        assert IntVect((7, 8, 9)) // 4 == IntVect((1, 2, 2))

    def test_neg(self):
        assert -IntVect((1, -2)) == IntVect((-1, 2))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            IntVect((1, 2)) + IntVect((1, 2, 3))

    def test_bad_type(self):
        with pytest.raises(TypeError):
            IntVect((1, 2)) + "x"


class TestComparisons:
    def test_le_lt_ge_gt(self):
        a, b = IntVect((1, 2)), IntVect((2, 3))
        assert a.le(b) and a.lt(b)
        assert b.ge(a) and b.gt(a)
        assert a.le(a) and not a.lt(a)

    def test_mixed_not_ordered(self):
        a, b = IntVect((1, 5)), IntVect((2, 3))
        assert not a.le(b) and not a.ge(b)

    def test_eq_with_tuple(self):
        assert IntVect((1, 2)) == (1, 2)
        assert IntVect((1, 2)) != (2, 1)

    def test_hashable(self):
        s = {IntVect((1, 2)), IntVect((1, 2)), IntVect((2, 1))}
        assert len(s) == 2


class TestHelpers:
    def test_shift(self):
        assert IntVect((0, 0, 0)).shift(1, 3) == IntVect((0, 3, 0))

    def test_shift_out_of_range(self):
        with pytest.raises(IndexError):
            IntVect((0, 0)).shift(2, 1)

    def test_with_component(self):
        assert IntVect((1, 2, 3)).with_component(0, 9) == IntVect((9, 2, 3))

    def test_min_max(self):
        a, b = IntVect((1, 5)), IntVect((2, 3))
        assert a.max_with(b) == IntVect((2, 5))
        assert a.min_with(b) == IntVect((1, 3))

    def test_sum_product(self):
        iv = IntVect((2, 3, 4))
        assert iv.sum() == 9
        assert iv.product() == 24

    def test_factories(self):
        assert zero_vector(3) == IntVect((0, 0, 0))
        assert ones_vector(2) == IntVect((1, 1))
        assert unit_vector(1, 3) == IntVect((0, 1, 0))
        with pytest.raises(IndexError):
            unit_vector(3, 3)
