"""Tests of the extended variant pool and its integration points."""

import numpy as np
import pytest

from repro.exemplar import random_initial_data, reference_kernel
from repro.machine import MAGNY_COURS
from repro.schedules import extended_variants, make_executor, practical_variants
from repro.schedules.spec import schedule_spec, validate_schedule
from repro.tuning import Autotuner


class TestExtendedPool:
    def test_superset_of_practical(self):
        ext = extended_variants()
        assert set(practical_variants()) <= set(ext)
        hier = [v for v in ext if v.intra_tile == "wavefront"]
        assert len(hier) == 6
        assert all(v.inner_tile_size < v.tile_size for v in hier)

    def test_all_extended_bitwise(self):
        phi_g = random_initial_data((21,) * 3, seed=5)  # 17^3 box
        ref = reference_kernel(phi_g)
        for v in extended_variants():
            if not v.applicable_to_box(17):
                continue
            out = make_executor(v, dim=3, ncomp=5).run_fresh(phi_g)
            assert np.array_equal(out, ref), v.label

    def test_specs_legal(self):
        for v in extended_variants():
            validate_schedule(schedule_spec(v, dim=3))

    def test_autotuner_accepts_extended_pool(self):
        tuner = Autotuner(MAGNY_COURS)
        result = tuner.tune(128, variants=extended_variants())
        assert result.best.time_s > 0
        # The hierarchical points are evaluated or pruned, not ignored.
        labels = {e.variant.label for e in result.entries}
        assert any("Hier-WF" in l for l in labels)
