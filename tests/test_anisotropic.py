"""Anisotropic domains and boxes through the whole stack.

The paper's own domain is anisotropic (512x384x256); these tests push
non-cubic shapes through the kernel, the schedules, the workload
builder, and the simulator.
"""

import numpy as np
import pytest

from repro.analysis import region_flops, variant_traffic
from repro.box import Box, ProblemDomain, decompose_domain
from repro.exemplar import ExemplarProblem, random_initial_data, reference_kernel
from repro.machine import SANDY_BRIDGE, build_workload, estimate_workload
from repro.schedules import Variant, make_executor, run_schedule_on_level


class TestKernelAnisotropic:
    def test_reference_on_slab(self):
        phi = random_initial_data((12, 6, 8), seed=0)
        out = reference_kernel(phi)
        assert out.shape == (8, 2, 4, 5)

    @pytest.mark.parametrize(
        "variant",
        [
            Variant("series", "P>=Box", "CLI"),
            Variant("shift_fuse", "P>=Box", "CLO"),
            Variant("blocked_wavefront", "P<Box", "CLO", tile_size=4),
            Variant("overlapped", "P<Box", "CLO", tile_size=4, intra_tile="basic"),
        ],
        ids=lambda v: v.category,
    )
    def test_variants_bitwise_on_anisotropic_box(self, variant):
        phi = random_initial_data((14, 10, 9), seed=3)
        ref = reference_kernel(phi)
        out = make_executor(variant, dim=3, ncomp=5).run_fresh(phi)
        assert np.array_equal(out, ref)

    def test_paper_domain_shape_level(self):
        # The paper's aspect ratio at 1/32 scale: 16x12x8 cells.
        p = ExemplarProblem(domain_cells=(16, 12, 8), box_size=4)
        phi0 = p.make_phi0()
        a = run_schedule_on_level(Variant("series", "P>=Box", "CLO"), phi0)
        b = run_schedule_on_level(Variant("shift_fuse", "P<Box", "CLI"), phi0)
        assert np.array_equal(a.to_global_array(), b.to_global_array())


class TestModelsAnisotropic:
    def test_region_flops_slab(self):
        f = region_flops((8, 4, 2), 5)
        faces = 9 * 8 + 5 * 16 + 3 * 32
        assert f.flux1 == 5 * faces * 5

    def test_traffic_accepts_shape(self):
        tm = variant_traffic(Variant("series"), (32, 16, 8))
        assert tm.compulsory > 0
        assert tm.worst_case_bytes() > tm.compulsory

    def test_workload_on_paper_domain(self):
        wl = build_workload(
            Variant("series", "P>=Box", "CLO"), 16, (64, 48, 32)
        )
        assert wl.num_boxes == 4 * 3 * 2
        r = estimate_workload(wl, SANDY_BRIDGE, 8)
        assert r.time_s > 0

    def test_domain_not_multiple_of_box(self):
        with pytest.raises(ValueError):
            build_workload(Variant("series"), 16, (64, 40, 32))
