"""Unit tests for DisjointBoxLayout and domain decomposition."""

import pytest

from repro.box import Box, DisjointBoxLayout, ProblemDomain, decompose_domain


def _domain(n=8, dim=3):
    return ProblemDomain(Box.cube(n, dim))


class TestDecompose:
    def test_counts(self):
        lay = decompose_domain(_domain(8), 4)
        assert len(lay) == 8
        assert lay.total_cells() == 512

    def test_paper_box_counts(self):
        # The paper's 50,331,648-cell domain splits into 12,288 boxes of
        # 16^3 and 24 boxes of 128^3 (§III-C). Verified scaled by 1/8
        # per direction to keep the test fast: 64x48x32 with boxes of 2
        # and 16 keeps the same ratios.
        d = ProblemDomain(Box.from_extents((0, 0, 0), (64, 48, 32)))
        assert len(decompose_domain(d, 2)) == 12288
        assert len(decompose_domain(d, 16)) == 24

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            decompose_domain(_domain(10), 4)

    def test_anisotropic_box(self):
        d = ProblemDomain(Box.from_extents((0, 0), (8, 6)))
        lay = decompose_domain(d, (4, 3))
        assert len(lay) == 4

    def test_rank_round_robin(self):
        lay = decompose_domain(_domain(8), 4, num_ranks=3)
        assert lay.num_ranks() == 3
        counts = [len(lay.boxes_on_rank(r)) for r in range(3)]
        assert sum(counts) == 8
        assert max(counts) - min(counts) <= 1


class TestValidation:
    def test_overlap_rejected(self):
        d = _domain(8, 2)
        with pytest.raises(ValueError):
            DisjointBoxLayout(d, [Box.cube(4, 2), Box.cube(4, 2, lo=2)])

    def test_outside_domain_rejected(self):
        d = _domain(4, 2)
        with pytest.raises(ValueError):
            DisjointBoxLayout(d, [Box.cube(4, 2, lo=2)])

    def test_empty_layout_rejected(self):
        with pytest.raises(ValueError):
            DisjointBoxLayout(_domain(), [])

    def test_rank_length_mismatch(self):
        d = _domain(4, 2)
        with pytest.raises(ValueError):
            DisjointBoxLayout(d, [Box.cube(4, 2)], ranks=[0, 1])


class TestNeighbors:
    def test_periodic_all_neighbors(self):
        # 2x2x2 boxes on a periodic domain: box 0's ghost ring wraps to
        # touch every *other* box (not itself: ghost 2 < box size 4).
        lay = decompose_domain(_domain(8), 4)
        nb = lay.neighbors(0, 2)
        assert set(nb) == set(range(1, 8))

    def test_self_neighbor_through_boundary(self):
        # A single box on a periodic domain is its own neighbour.
        lay = decompose_domain(_domain(8), 8)
        assert lay.neighbors(0, 2) == [0]

    def test_interior_neighbors_nonperiodic(self):
        d = ProblemDomain(Box.cube(8, 2), periodic=(False, False))
        lay = decompose_domain(d, 4)
        # Corner box of a 2x2 grid touches the other 3.
        assert set(lay.neighbors(0, 1)) == {1, 2, 3}

    def test_zero_ghost_no_neighbors(self):
        d = ProblemDomain(Box.cube(8, 2), periodic=(False, False))
        lay = decompose_domain(d, 4)
        assert lay.neighbors(0, 0) == []


class TestSpatialIndex:
    def test_boxes_intersecting_regular(self):
        lay = decompose_domain(_domain(8), 4)
        hits = lay.boxes_intersecting(Box.cube(2, 3, lo=3))
        # Region (3..4)^3 straddles all 8 boxes.
        assert sorted(hits) == list(range(8))

    def test_boxes_intersecting_single(self):
        lay = decompose_domain(_domain(8), 4)
        hits = lay.boxes_intersecting(Box.cube(2, 3))
        assert len(hits) == 1
        assert lay.box(hits[0]).contains(Box.cube(2, 3))

    def test_irregular_layout_fallback(self):
        d = ProblemDomain(Box.from_extents((0, 0), (8, 4)), periodic=(False, False))
        lay = DisjointBoxLayout(
            d, [Box.from_extents((0, 0), (2, 4)), Box.from_extents((2, 0), (6, 4))]
        )
        assert lay._grid_index is None
        hits = lay.boxes_intersecting(Box.from_extents((1, 0), (2, 2)))
        assert sorted(hits) == [0, 1]

    def test_empty_region(self):
        lay = decompose_domain(_domain(8), 4)
        assert lay.boxes_intersecting(Box.empty(3)) == []
