"""Property-based tests (hypothesis) of the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    ghost_ratio,
    miss_fraction,
    region_flops,
    variant_traffic,
)
from repro.box import Box, IntVect
from repro.exemplar import random_initial_data, reference_kernel
from repro.schedules import TileGrid, Variant, make_executor

# ----------------------------------------------------------- strategies
dims = st.integers(min_value=1, max_value=4)


def boxes(dim, max_size=12):
    coords = st.integers(min_value=-8, max_value=8)
    sizes = st.integers(min_value=1, max_value=max_size)
    return st.tuples(
        st.tuples(*[coords] * dim), st.tuples(*[sizes] * dim)
    ).map(lambda t: Box.from_extents(t[0], t[1]))


class TestBoxCalculus:
    @given(dims.flatmap(lambda d: boxes(d)), st.integers(1, 3))
    def test_grow_shrink_inverse(self, box, g):
        assert box.grow(g).grow(-g) == box

    @given(dims.flatmap(lambda d: st.tuples(boxes(d), boxes(d))))
    def test_intersection_commutative_and_contained(self, pair):
        a, b = pair
        i1, i2 = a & b, b & a
        assert i1.is_empty == i2.is_empty
        if not i1.is_empty:
            assert i1.lo == i2.lo and i1.hi == i2.hi
            assert a.contains(i1) and b.contains(i1)

    @given(dims.flatmap(lambda d: st.tuples(boxes(d), boxes(d))))
    def test_minbox_contains_both(self, pair):
        a, b = pair
        m = a.minbox(b)
        assert a in m and b in m

    @settings(max_examples=40, deadline=None)
    @given(dims.flatmap(lambda d: boxes(d, max_size=8)), st.integers(1, 5))
    def test_tiles_partition_box(self, box, tile):
        tiles = box.tile(tile)
        assert sum(t.num_points() for t in tiles) == box.num_points()
        for i, a in enumerate(tiles):
            for b in tiles[i + 1:]:
                assert not a.intersects(b)
            assert box.contains(a)

    @given(dims.flatmap(lambda d: boxes(d)), st.integers(0, 2))
    def test_face_box_roundtrip(self, box, direction):
        d = min(direction, box.dim - 1)
        fb = box.face_box(d)
        assert fb.enclosed_cells() == box
        assert fb.num_points() == box.num_points() // box.size(d) * (box.size(d) + 1)


class TestTileGridProperties:
    @given(
        st.integers(4, 20),
        st.integers(1, 7),
        st.integers(2, 3),
    )
    def test_wavefront_sizes_sum_to_tiles(self, n, tile, dim):
        grid = TileGrid(Box.cube(n, dim), tile)
        assert sum(grid.wavefront_sizes()) == len(grid)
        assert grid.num_wavefronts == len(grid.wavefront_sizes())

    @given(st.integers(4, 16), st.integers(1, 5))
    def test_upstream_always_previous_wavefront(self, n, tile):
        grid = TileGrid(Box.cube(n, 2), tile)
        for i in range(len(grid)):
            for up in grid.upstream_neighbors(i):
                assert grid.wavefront_of(up) + 1 == grid.wavefront_of(i)


class TestKernelProperties:
    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(5, 9),
        st.integers(0, 10_000),
        st.sampled_from(
            [
                Variant("series", "P>=Box", "CLI"),
                Variant("shift_fuse", "P<Box", "CLO"),
                Variant("blocked_wavefront", "P<Box", "CLO", tile_size=4),
                Variant("overlapped", "P>=Box", "CLO", tile_size=4,
                        intra_tile="shift_fuse"),
            ]
        ),
    )
    def test_variants_bitwise_on_random_boxes(self, n, seed, variant):
        if not variant.applicable_to_box(n):
            n = variant.tile_size + 1 + (n % 3)
        phi_g = random_initial_data((n + 4,) * 3, seed=seed)
        ref = reference_kernel(phi_g)
        out = make_executor(variant, dim=3, ncomp=5).run_fresh(phi_g)
        assert np.array_equal(out, ref)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(5, 10), st.integers(0, 10_000))
    def test_kernel_linearity_in_scaling(self, n, seed):
        # The kernel is quadratic in phi (flux = phi * velocity), so
        # scaling the input by a scales the *increment* by a^2.
        phi_g = random_initial_data((n + 4,) * 3, seed=seed)
        out1 = reference_kernel(phi_g)
        inc1 = out1 - phi_g[2:-2, 2:-2, 2:-2, :]
        out2 = reference_kernel(2.0 * phi_g)
        inc2 = out2 - 2.0 * phi_g[2:-2, 2:-2, 2:-2, :]
        assert np.allclose(inc2, 4.0 * inc1, rtol=1e-12, atol=1e-12)


class TestModelProperties:
    @given(
        st.floats(1.0, 1e12),
        st.floats(0.0, 1e12),
    )
    def test_miss_fraction_bounds(self, ws, cache):
        f = miss_fraction(ws, cache)
        assert 0.0 <= f <= 1.0

    @given(st.integers(8, 256), st.integers(2, 6), st.integers(0, 8))
    def test_ghost_ratio_above_one(self, n, dim, ghost):
        r = ghost_ratio(n, dim, ghost)
        assert r >= 1.0
        if ghost > 0:
            assert r > 1.0

    @given(
        st.sampled_from(
            [
                Variant("series"),
                Variant("shift_fuse"),
                Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8),
                Variant("overlapped", "P<Box", "CLO", tile_size=8,
                        intra_tile="basic"),
            ]
        ),
        st.integers(16, 128),
        st.floats(1e3, 1e9),
    )
    def test_traffic_at_least_compulsory(self, variant, n, cache):
        tm = variant_traffic(variant, n)
        assert tm.dram_bytes(cache) >= tm.compulsory - 1e-9

    @given(st.integers(2, 16), st.integers(2, 16), st.integers(2, 16))
    def test_region_flops_additive_in_cells(self, a, b, c):
        # Accumulation flops are exactly additive when splitting a
        # region; face flops grow by the shared plane.
        whole = region_flops((a + b, c, c), 5)
        left = region_flops((a, c, c), 5)
        right = region_flops((b, c, c), 5)
        assert left.accumulate + right.accumulate == whole.accumulate
        extra_faces = c * c * 5  # the duplicated plane, all comps
        assert left.flux1 + right.flux1 == whole.flux1 + 5 * extra_faces
