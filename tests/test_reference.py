"""Tests of the reference kernel: conservation, decomposition independence."""

import numpy as np
import pytest

from repro.exemplar import (
    ExemplarProblem,
    random_initial_data,
    reference_kernel,
    reference_on_level,
    required_ghost,
)


class TestReferenceKernel:
    def test_required_ghost(self):
        assert required_ghost() == 2

    def test_shape(self):
        phi = random_initial_data((10, 10, 10), seed=0)
        out = reference_kernel(phi)
        assert out.shape == (6, 6, 6, 5)

    def test_too_few_components(self):
        with pytest.raises(ValueError):
            reference_kernel(np.zeros((8, 8, 8, 3)))

    def test_too_small_box(self):
        with pytest.raises(ValueError):
            reference_kernel(np.zeros((4, 8, 8, 5)))

    def test_constant_state_fixed_point_structure(self):
        # For spatially-constant phi, every face flux equals v*phi and
        # the divergence vanishes: phi1 == phi0.
        phi = np.ones((10, 10, 10, 5), order="F")
        phi[..., 1] = 2.0
        out = reference_kernel(phi)
        assert np.allclose(out, phi[2:-2, 2:-2, 2:-2, :])

    def test_2d_supported(self):
        phi = random_initial_data((9, 9), ncomp=4, seed=1)
        out = reference_kernel(phi)
        assert out.shape == (5, 5, 4)

    def test_deterministic(self):
        phi = random_initial_data((9, 9, 9), seed=5)
        assert np.array_equal(reference_kernel(phi), reference_kernel(phi))


class TestConservation:
    """The finite-volume telescoping property (§II): on a periodic
    domain the total of each component is exactly conserved."""

    @pytest.mark.parametrize("box_size", [4, 8])
    def test_global_conservation(self, box_size):
        p = ExemplarProblem(domain_cells=(8, 8, 8), box_size=box_size)
        phi0 = p.make_phi0()
        phi1 = reference_on_level(phi0)
        g0 = phi0.to_global_array()
        g1 = phi1.to_global_array()
        drift = np.abs((g1 - g0).sum(axis=(0, 1, 2)))
        assert drift.max() < 1e-10 * g0.size


class TestDecompositionIndependence:
    def test_box_size_invariance_bitwise(self):
        a = ExemplarProblem(domain_cells=(8, 8, 8), box_size=4)
        b = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8)
        ga = reference_on_level(a.make_phi0()).to_global_array()
        gb = reference_on_level(b.make_phi0()).to_global_array()
        assert np.array_equal(ga, gb)

    def test_anisotropic_domain(self):
        a = ExemplarProblem(domain_cells=(8, 4, 4), box_size=4)
        g = reference_on_level(a.make_phi0()).to_global_array()
        assert g.shape == (8, 4, 4, 5)

    def test_ghost_width_enforced(self):
        p = ExemplarProblem(domain_cells=(4, 4, 4), box_size=4, ghost=1)
        phi0 = p.make_phi0()
        with pytest.raises(ValueError):
            reference_on_level(phi0)


class TestProblemSetup:
    def test_paper_instance_counts(self):
        for box, nboxes in ((16, 12288), (32, 1536), (64, 192), (128, 24)):
            p = ExemplarProblem.paper_instance(box)
            dom = np.prod(p.domain_cells)
            assert dom == 50_331_648
            assert dom // box**3 == nboxes

    def test_paper_instance_rejects_odd_size(self):
        with pytest.raises(ValueError):
            ExemplarProblem.paper_instance(48)

    def test_ncomp_check(self):
        with pytest.raises(ValueError):
            ExemplarProblem(domain_cells=(4, 4, 4), box_size=4, ncomp=3)
