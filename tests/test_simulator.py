"""Tests of the execution simulators: physics bounds, engine agreement,
and the paper's qualitative scaling behaviour."""

import pytest

from repro.machine import (
    IVY_BRIDGE,
    MAGNY_COURS,
    SANDY_BRIDGE,
    build_workload,
    estimate_workload,
    min_time_bound,
    simulate_workload,
)
from repro.schedules import Variant

SMALL_DOMAIN = (32, 32, 32)


def _wl(variant=None, box=16, domain=SMALL_DOMAIN):
    return build_workload(variant or Variant("series", "P>=Box", "CLO"), box, domain)


class TestPhysicsBounds:
    @pytest.mark.parametrize("threads", [1, 4, 16])
    @pytest.mark.parametrize("engine", ["estimate", "simulate"])
    def test_never_beats_roofline(self, threads, engine):
        wl = _wl()
        run = estimate_workload if engine == "estimate" else simulate_workload
        r = run(wl, SANDY_BRIDGE, threads)
        bound = min_time_bound(SANDY_BRIDGE, r.flops, r.dram_bytes, threads)
        assert r.time_s >= bound * 0.999

    def test_monotone_in_threads(self):
        wl = _wl()
        times = [
            estimate_workload(wl, SANDY_BRIDGE, t).time_s for t in (1, 2, 4, 8, 16)
        ]
        # Near-monotone: extra threads may only cost barrier overhead.
        assert all(b <= a * 1.02 for a, b in zip(times, times[1:]))

    def test_thread_limit_enforced(self):
        wl = _wl()
        with pytest.raises(ValueError):
            estimate_workload(wl, SANDY_BRIDGE, 17)
        with pytest.raises(ValueError):
            simulate_workload(wl, SANDY_BRIDGE, 17)

    def test_bandwidth_never_exceeds_machine(self):
        wl = _wl(Variant("series", "P>=Box", "CLO"), 32, (64, 64, 64))
        for t in (1, 8, 16):
            r = estimate_workload(wl, SANDY_BRIDGE, t)
            assert r.bandwidth_gbs <= SANDY_BRIDGE.effective_bw_gbs * 1.001


class TestEngineAgreement:
    @pytest.mark.parametrize(
        "variant",
        [
            Variant("series", "P>=Box", "CLO"),
            Variant("series", "P<Box", "CLI"),
            Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="basic"),
            Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8),
        ],
        ids=lambda v: v.short_name,
    )
    @pytest.mark.parametrize("threads", [1, 3, 8])
    def test_estimate_matches_simulation(self, variant, threads):
        wl = _wl(variant)
        est = estimate_workload(wl, IVY_BRIDGE, threads)
        sim = simulate_workload(wl, IVY_BRIDGE, threads)
        assert est.time_s == pytest.approx(sim.time_s, rel=0.05)
        assert est.dram_bytes == pytest.approx(sim.dram_bytes, rel=1e-6)
        assert est.flops == pytest.approx(sim.flops, rel=1e-9)


class TestPaperShape:
    """Scaled-down versions of the headline figure claims."""

    def test_baseline_small_box_scales(self):
        wl = build_workload(Variant("series", "P>=Box", "CLO"), 16)
        t1 = estimate_workload(wl, MAGNY_COURS, 1).time_s
        t24 = estimate_workload(wl, MAGNY_COURS, 24).time_s
        assert t1 / t24 > 0.75 * 24

    def test_baseline_large_box_stalls(self):
        wl = build_workload(Variant("series", "P>=Box", "CLO"), 128)
        t1 = estimate_workload(wl, MAGNY_COURS, 1).time_s
        t24 = estimate_workload(wl, MAGNY_COURS, 24).time_s
        assert t1 / t24 < 8

    def test_ot_restores_large_box(self):
        base16 = build_workload(Variant("series", "P>=Box", "CLO"), 16)
        ot128 = build_workload(
            Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse"),
            128,
        )
        tb = estimate_workload(base16, MAGNY_COURS, 24).time_s
        to = estimate_workload(ot128, MAGNY_COURS, 24).time_s
        assert to <= 1.25 * tb

    def test_wavefront_fill_drain_penalty(self):
        # Wavefront tiles scale but pay the ramp: strictly slower than
        # the equivalent overlapped tiling at high thread counts.
        wf = build_workload(
            Variant("blocked_wavefront", "P<Box", "CLO", tile_size=16), 128
        )
        ot = build_workload(
            Variant("overlapped", "P<Box", "CLO", tile_size=16, intra_tile="shift_fuse"),
            128,
        )
        t_wf = estimate_workload(wf, MAGNY_COURS, 24).time_s
        t_ot = estimate_workload(ot, MAGNY_COURS, 24).time_s
        assert t_wf > 1.2 * t_ot

    def test_result_accessors(self):
        wl = _wl()
        r = estimate_workload(wl, SANDY_BRIDGE, 4)
        assert r.gflops > 0
        assert r.bandwidth_gbs > 0
        assert r.speedup_over(estimate_workload(wl, SANDY_BRIDGE, 1)) > 1.0
        assert len(r.phase_times) == len(wl.phases)


class TestSpeedupDegenerateCases:
    """Regression: speedup_over used to ZeroDivisionError on zero-time
    results; now every degenerate combination is defined, consistent
    with the gflops/bandwidth_gbs zero guards."""

    def _r(self, t):
        from repro.machine.simulator import SimResult

        return SimResult("m", "v", 1, t, 0.0, 0.0, [t])

    def test_normal_ratio(self):
        assert self._r(1.0).speedup_over(self._r(2.0)) == 2.0

    def test_zero_time_self_vs_nonzero(self):
        import math

        assert self._r(0.0).speedup_over(self._r(2.0)) == math.inf

    def test_nonzero_vs_zero_time_other(self):
        assert self._r(2.0).speedup_over(self._r(0.0)) == 0.0

    def test_both_zero_tie(self):
        assert self._r(0.0).speedup_over(self._r(0.0)) == 1.0

    def test_nan_propagates(self):
        import math

        nan = float("nan")
        assert math.isnan(self._r(nan).speedup_over(self._r(1.0)))
        assert math.isnan(self._r(1.0).speedup_over(self._r(nan)))
        assert math.isnan(self._r(nan).speedup_over(self._r(0.0)))

    def test_zero_time_accessors_stay_finite(self):
        r = self._r(0.0)
        assert r.gflops == 0.0
        assert r.bandwidth_gbs == 0.0
