"""Tests of real threaded execution: bitwise equality under concurrency."""

import numpy as np
import pytest

from repro.exemplar import ExemplarProblem
from repro.parallel import build_plan, run_plan, run_schedule_parallel
from repro.schedules import Variant, prepare_phi1, run_schedule_on_level


@pytest.fixture(scope="module")
def problem():
    return ExemplarProblem(domain_cells=(16, 16, 16), box_size=8)


@pytest.fixture(scope="module")
def phi0(problem):
    return problem.make_phi0()


@pytest.fixture(scope="module")
def reference(phi0):
    return run_schedule_on_level(
        Variant("series", "P>=Box", "CLO"), phi0
    ).to_global_array()


ALL_KINDS = [
    Variant("series", "P>=Box", "CLO"),
    Variant("series", "P<Box", "CLO"),
    Variant("series", "P<Box", "CLI"),
    Variant("shift_fuse", "P>=Box", "CLI"),
    Variant("shift_fuse", "P<Box", "CLO"),
    Variant("blocked_wavefront", "P<Box", "CLO", tile_size=4),
    Variant("blocked_wavefront", "P<Box", "CLI", tile_size=4),
    Variant("overlapped", "P<Box", "CLO", tile_size=4, intra_tile="basic"),
    Variant("overlapped", "P<Box", "CLO", tile_size=4, intra_tile="shift_fuse"),
    Variant("overlapped", "P>=Box", "CLO", tile_size=4, intra_tile="shift_fuse"),
]


class TestBitwiseUnderThreads:
    @pytest.mark.parametrize("variant", ALL_KINDS, ids=lambda v: v.short_name)
    @pytest.mark.parametrize("threads", [1, 4])
    def test_parallel_equals_serial(self, variant, threads, phi0, reference):
        r = run_schedule_parallel(variant, phi0, threads)
        assert np.array_equal(r.phi1.to_global_array(), reference)

    def test_repeated_runs_identical(self, phi0):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=4, intra_tile="basic")
        a = run_schedule_parallel(v, phi0, 4).phi1.to_global_array()
        b = run_schedule_parallel(v, phi0, 4).phi1.to_global_array()
        assert np.array_equal(a, b)


class TestPlanStructure:
    def test_box_plan(self, phi0):
        phi1 = prepare_phi1(phi0)
        plan = build_plan(Variant("series", "P>=Box", "CLO"), phi0, phi1)
        assert len(plan.groups) == 1
        assert plan.num_tasks == 8

    def test_wavefront_barriers(self, phi0):
        phi1 = prepare_phi1(phi0)
        v = Variant("blocked_wavefront", "P<Box", "CLO", tile_size=4)
        plan = build_plan(v, phi0, phi1)
        # Per box: 1 velocity group + 5 comps x 4 wavefronts = 21.
        assert len(plan.groups) == 8 * 21
        assert plan.max_group_width() == 3

    def test_slab_override(self, phi0):
        phi1 = prepare_phi1(phi0)
        plan = build_plan(
            Variant("series", "P<Box", "CLO"), phi0, phi1, slabs_per_box=2
        )
        assert all(len(g.tasks) == 2 for g in plan.groups)

    def test_result_metadata(self, phi0):
        v = Variant("series", "P<Box", "CLO")
        r = run_schedule_parallel(v, phi0, 2)
        assert r.threads == 2
        # Paper-faithful series P<Box: per box, 3 directions x 3 loop
        # groups (flux1/flux2/accum), each split into 8 z-chunks.
        assert r.num_barriers == 8 * 9
        assert r.num_tasks == 8 * 9 * 8
        assert r.elapsed_s > 0


class TestValidation:
    def test_ghost_requirement(self, problem):
        shallow = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8, ghost=1)
        with pytest.raises(ValueError):
            run_schedule_parallel(
                Variant("series"), shallow.make_phi0(exchange=False), 2
            )

    def test_threads_positive(self, phi0):
        phi1 = prepare_phi1(phi0)
        plan = build_plan(Variant("series"), phi0, phi1)
        with pytest.raises(ValueError):
            run_plan(plan, 0)


class TestSharedPoolStats:
    def test_stats_reflect_pool(self):
        from repro.parallel import shared_pool_stats
        from repro.parallel.pool import get_shared_pool

        get_shared_pool(2)
        stats = shared_pool_stats()
        assert stats["size"] >= 2
        assert stats["alive"] is True
        assert 0 <= stats["threads_alive"] <= stats["size"]
