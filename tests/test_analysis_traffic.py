"""Tests of the traffic model: limits, orderings, §VI-B behaviours."""

import pytest

from repro.analysis import (
    ReuseStream,
    TrafficModel,
    box_footprint_bytes,
    miss_fraction,
    scratch_bytes,
    stencil_window_bytes,
    variant_traffic,
)
from repro.schedules import Variant

MB = 2**20


class TestMissFraction:
    def test_fits(self):
        assert miss_fraction(100, 200) == 0.0
        assert miss_fraction(200, 200) == 0.0

    def test_no_cache(self):
        assert miss_fraction(100, 0) == 1.0

    def test_partial(self):
        assert miss_fraction(200, 100) == pytest.approx(0.5)

    def test_monotone_in_ws(self):
        fracs = [miss_fraction(ws, 100) for ws in (50, 150, 300, 1000)]
        assert fracs == sorted(fracs)


class TestTrafficModel:
    def test_compulsory_floor(self):
        tm = TrafficModel(100.0, [ReuseStream("s", 50.0, 10.0)])
        assert tm.dram_bytes(1e9) == 100.0
        assert tm.worst_case_bytes() == 150.0

    def test_monotone_decreasing_in_cache(self):
        v = Variant("series", "P>=Box", "CLO")
        tm = variant_traffic(v, 64)
        sizes = [0.1 * MB, 1 * MB, 10 * MB, 100 * MB, 1e12]
        traffics = [tm.dram_bytes(s) for s in sizes]
        assert all(a >= b for a, b in zip(traffics, traffics[1:]))
        assert traffics[-1] == pytest.approx(tm.compulsory)

    def test_scaled(self):
        tm = variant_traffic(Variant("series"), 32)
        half = tm.scaled(0.5)
        assert half.compulsory == pytest.approx(tm.compulsory / 2)
        # Windows unchanged; bytes halved.
        for a, b in zip(tm.streams, half.streams):
            assert b.working_set == a.working_set
            assert b.bytes == pytest.approx(a.bytes / 2)


class TestPaperBehaviours:
    """The §VI-B findings the model must reproduce."""

    def test_small_box_compulsory_only(self):
        # N=16 in a 12 MB L3: everything fits, traffic ~ compulsory.
        for v in (Variant("series"), Variant("shift_fuse")):
            tm = variant_traffic(v, 16)
            assert tm.dram_bytes(12 * MB) == pytest.approx(tm.compulsory)

    def test_large_box_baseline_blowup(self):
        tm = variant_traffic(Variant("series"), 128)
        assert tm.dram_bytes(1 * MB) > 4 * tm.compulsory

    def test_shift_fuse_halves_baseline(self):
        base = variant_traffic(Variant("series"), 128).dram_bytes(1 * MB)
        fused = variant_traffic(Variant("shift_fuse"), 128).dram_bytes(1 * MB)
        assert 1.5 < base / fused < 3.0

    def test_overlapped_near_compulsory(self):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse")
        tm = variant_traffic(v, 128)
        assert tm.dram_bytes(1 * MB) < 1.5 * tm.compulsory

    def test_cli_worse_than_clo_at_large_n(self):
        clo = variant_traffic(Variant("series", "P>=Box", "CLO"), 128)
        cli = variant_traffic(Variant("series", "P>=Box", "CLI"), 128)
        assert cli.dram_bytes(1 * MB) > clo.dram_bytes(1 * MB)

    def test_schedule_ordering_at_128(self):
        cache = 1 * MB
        series = variant_traffic(Variant("series"), 128).dram_bytes(cache)
        fused = variant_traffic(Variant("shift_fuse"), 128).dram_bytes(cache)
        wf = variant_traffic(
            Variant("blocked_wavefront", "P<Box", "CLO", tile_size=16), 128
        ).dram_bytes(cache)
        ot = variant_traffic(
            Variant("overlapped", "P<Box", "CLO", tile_size=16, intra_tile="shift_fuse"),
            128,
        ).dram_bytes(cache)
        assert ot < wf < fused < series

    def test_tile32_spills(self):
        # Tile-32 scratch outgrows a 1 MB share: more traffic than tile 8.
        t32 = variant_traffic(
            Variant("overlapped", "P<Box", "CLO", tile_size=32, intra_tile="basic"), 128
        ).dram_bytes(0.5 * MB)
        t8 = variant_traffic(
            Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="basic"), 128
        ).dram_bytes(0.5 * MB)
        assert t32 > t8


class TestLocalityHelpers:
    def test_stencil_window_grows_with_axis(self):
        shape = (64, 64, 64)
        wx = stencil_window_bytes(shape, 0, 1)
        wy = stencil_window_bytes(shape, 1, 1)
        wz = stencil_window_bytes(shape, 2, 1)
        assert wx < wy < wz
        assert wz == 4 * 68 * 68 * 8

    def test_window_comp_factor(self):
        shape = (64, 64, 64)
        assert stencil_window_bytes(shape, 2, 5) == 5 * stencil_window_bytes(shape, 2, 1)

    def test_scratch_ordering(self):
        shape = (128, 128, 128)
        s_series = scratch_bytes(Variant("series"), shape, 5)
        s_fused = scratch_bytes(Variant("shift_fuse"), shape, 5)
        s_ot = scratch_bytes(
            Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="basic"),
            shape,
            5,
        )
        assert s_ot < s_fused < s_series

    def test_footprint_includes_state(self):
        v = Variant("series")
        fp = box_footprint_bytes(v, (16, 16, 16), 5)
        state = (5 * 20**3 + 2 * 5 * 16**3) * 8
        assert fp > state
