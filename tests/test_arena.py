"""Scratch-arena semantics: pooling, scoping, accounting, bitwise identity.

The arena may only change *where* scratch memory comes from, never what
any schedule computes or what the allocation tracker records.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exemplar import ExemplarProblem
from repro.parallel import run_schedule_parallel
from repro.schedules import Variant, run_schedule_on_level
from repro.schedules.variants import practical_variants
from repro.util import clear_arena, scratch_arena, scratch_scope, track_allocations
from repro.util.alloc import alloc_scratch
from repro.util.arena import arena_enabled, arena_take


@pytest.fixture(autouse=True)
def _fresh_arena():
    clear_arena()
    yield
    clear_arena()


class TestArenaCore:
    def test_disabled_by_default(self):
        assert not arena_enabled()
        assert arena_take("t", (4,), np.float64, "F") is None
        a = alloc_scratch("t", (4,))
        b = alloc_scratch("t", (4,))
        assert a is not b

    def test_enable_is_scoped_and_nests(self):
        with scratch_arena():
            assert arena_enabled()
            with scratch_arena():
                assert arena_enabled()
            assert arena_enabled()
        assert not arena_enabled()

    def test_no_pooling_without_task_scope(self):
        # Scratch allocated outside any scratch_scope (e.g. plan tasks
        # whose buffers outlive the task) must never enter the pool.
        with scratch_arena():
            assert arena_take("t", (4,), np.float64, "F") is None
            a = alloc_scratch("t", (8,))
            with scratch_scope():
                b = alloc_scratch("t", (8,))
            assert a is not b

    def test_reuse_across_scopes(self):
        with scratch_arena():
            with scratch_scope():
                a = alloc_scratch("flux", (5, 5))
            with scratch_scope():
                b = alloc_scratch("flux", (5, 5))
        assert a is b

    def test_no_alias_within_one_scope(self):
        # Two live allocations of the identical key in one task must be
        # distinct arrays.
        with scratch_arena():
            with scratch_scope():
                arrs = [alloc_scratch("flux", (3, 3)) for _ in range(6)]
                for i, arr in enumerate(arrs):
                    arr[...] = i
                for i, arr in enumerate(arrs):
                    assert np.all(arr == i)
                assert len({id(a) for a in arrs}) == len(arrs)

    def test_key_includes_shape_dtype_order(self):
        with scratch_arena():
            with scratch_scope():
                a = alloc_scratch("t", (4, 4))
            with scratch_scope():
                assert alloc_scratch("t", (4, 8)) is not a
                assert alloc_scratch("t", (4, 4), dtype=np.float32) is not a
                assert alloc_scratch("t", (4, 4), order="C") is not a
                again = alloc_scratch("t", (4, 4))
            assert again is a
            assert again.flags.f_contiguous

    def test_clear_arena_drops_pooled_buffers(self):
        with scratch_arena():
            with scratch_scope():
                a = alloc_scratch("t", (4,))
            clear_arena()
            with scratch_scope():
                b = alloc_scratch("t", (4,))
        assert a is not b


class TestAccounting:
    def test_tracker_records_identical_with_arena(self):
        """Logical allocation accounting (Table I) must not see pooling."""
        problem = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8)
        v = Variant("overlapped", "P<Box", "CLO", tile_size=4, intra_tile="basic")

        with track_allocations() as plain:
            run_schedule_on_level(v, problem.make_phi0())
        with scratch_arena():
            with track_allocations() as pooled:
                run_schedule_on_level(v, problem.make_phi0())

        key = lambda t: [(r.tag, r.shape, r.elements) for r in t.records]
        assert key(pooled) == key(plain)
        assert pooled.total_elements() == plain.total_elements()
        assert pooled.peak_elements_by_tag() == plain.peak_elements_by_tag()
        assert pooled.count() == plain.count()


class TestBitwiseWithArena:
    @pytest.fixture(scope="class")
    def problem(self):
        return ExemplarProblem(domain_cells=(16, 16, 16), box_size=8)

    @pytest.fixture(scope="class")
    def phi0(self, problem):
        return problem.make_phi0()

    @pytest.fixture(scope="class")
    def reference(self, phi0):
        return run_schedule_on_level(
            Variant("series", "P>=Box", "CLO"), phi0
        ).to_global_array()

    @pytest.mark.parametrize(
        "variant",
        [v for v in practical_variants() if v.applicable_to_box(8)],
        ids=lambda v: v.short_name,
    )
    def test_all_practical_variants_bitwise(self, variant, phi0, reference):
        r = run_schedule_parallel(variant, phi0, 4, arena=True)
        assert np.array_equal(r.phi1.to_global_array(), reference)

    def test_arena_off_matches_arena_on(self, phi0):
        v = Variant("blocked_wavefront", "P<Box", "CLI", tile_size=4)
        on = run_schedule_parallel(v, phi0, 4, arena=True).phi1.to_global_array()
        off = run_schedule_parallel(v, phi0, 4, arena=False).phi1.to_global_array()
        assert np.array_equal(on, off)


# One variant per executor family, built around a drawn tile size.
def _family_variants(tile):
    return [
        Variant("series", "P<Box", "CLO"),
        Variant("shift_fuse", "P<Box", "CLI"),
        Variant("blocked_wavefront", "P<Box", "CLO", tile_size=tile),
        Variant("overlapped", "P<Box", "CLO", tile_size=tile, intra_tile="basic"),
        Variant("overlapped", "P>=Box", "CLO", tile_size=tile, intra_tile="shift_fuse"),
    ]


class TestRandomizedGeometry:
    @settings(max_examples=5, deadline=None)
    @given(
        geometry=st.sampled_from([(8, 4), (16, 4), (16, 8)]),
        threads=st.integers(min_value=2, max_value=4),
    )
    def test_families_bitwise_random_box_tile(self, geometry, threads):
        box_size, tile = geometry
        problem = ExemplarProblem(domain_cells=(16, 16, 16), box_size=box_size)
        phi0 = problem.make_phi0()
        reference = run_schedule_on_level(
            Variant("series", "P>=Box", "CLO"), phi0
        ).to_global_array()
        for v in _family_variants(tile):
            r = run_schedule_parallel(v, phi0, threads, arena=True)
            assert np.array_equal(r.phi1.to_global_array(), reference), v.label


class TestDeadThreadSweep:
    """Regression: the registry used to pin every worker thread's free
    lists (and the pooled arrays in them) for the life of the process."""

    def _spawn_pooling_thread(self, nbytes=1 << 16):
        import threading

        def work():
            with scratch_scope():
                alloc_scratch("leak-probe", (nbytes // 8,))

        t = threading.Thread(target=work)
        with scratch_arena():
            t.start()
            t.join()

    def test_dead_threads_are_swept_from_registry(self):
        from repro.util import arena as _arena

        for _ in range(8):
            self._spawn_pooling_thread()
        # The next fresh thread's registration sweeps the 8 dead ones;
        # at most that final thread itself can remain registered dead.
        self._spawn_pooling_thread()
        with _arena._lock:
            dead = [t for t, _ in _arena._all_states if not t.is_alive()]
        assert len(dead) <= 1

    def test_dead_thread_buffers_are_released(self):
        from repro.util import arena as _arena

        nbytes = 1 << 20
        for _ in range(4):
            self._spawn_pooling_thread(nbytes)
        with _arena._lock:
            _arena._sweep_dead_locked()
            pinned = sum(
                arr.nbytes
                for _, st in _arena._all_states
                for stack in st.free.values()
                for arr in stack
            )
        # Pre-fix this pinned 4 MiB of dead workers' pooled buffers;
        # post-sweep only live threads' pools remain, and this test's
        # own thread pooled nothing that large.
        assert pinned < nbytes

    def test_clear_arena_prunes_dead_entries(self):
        from repro.util import arena as _arena

        for _ in range(4):
            self._spawn_pooling_thread()
        clear_arena()
        with _arena._lock:
            assert all(t.is_alive() for t, _ in _arena._all_states)


class TestArenaStats:
    def test_disabled_baseline(self):
        from repro.util import arena_stats

        clear_arena()
        stats = arena_stats()
        assert stats["enabled"] is False
        assert stats["buffers_free"] >= 0
        assert stats["bytes_pinned"] == stats["bytes_free"] + stats["bytes_live"]

    def test_live_and_free_bytes_tracked(self):
        from repro.util import arena_stats

        clear_arena()
        with scratch_arena():
            with scratch_scope():
                arr = arena_take("t", (1024,), np.float64, "C")
                assert arr is not None
                stats = arena_stats()
                assert stats["enabled"] is True
                assert stats["buffers_live"] >= 1
                assert stats["bytes_live"] >= arr.nbytes
                assert stats["bytes_pinned"] >= arr.nbytes
            # Scope closed: the buffer moved to this thread's free list.
            stats = arena_stats()
            assert stats["buffers_free"] >= 1
            assert stats["bytes_free"] >= 8 * 1024
            assert stats["buffers_per_thread_max"] >= 1
        clear_arena()

    def test_hit_miss_counters_surface(self):
        from repro.util import arena_stats
        from repro.util.perf import reset_perf

        reset_perf()
        clear_arena()
        with scratch_arena():
            with scratch_scope():
                arena_take("t", (16,), np.float64, "C")
            with scratch_scope():
                arena_take("t", (16,), np.float64, "C")
        stats = arena_stats()
        assert stats["misses"] >= 1
        assert stats["hits"] >= 1
        clear_arena()
        reset_perf()

    def test_publish_arena_gauges(self):
        from repro.obs.metrics import MetricsRegistry
        from repro.util import publish_arena_gauges

        clear_arena()
        reg = MetricsRegistry()
        with scratch_arena():
            with scratch_scope():
                arena_take("g", (2048,), np.float64, "C")
            stats = publish_arena_gauges(reg)
        assert reg.gauge_value("arena.bytes_pinned") == float(
            stats["bytes_pinned"]
        )
        assert reg.gauge_value("arena.buffers_free") == float(
            stats["buffers_free"]
        )
        assert reg.gauge_value("arena.threads") == float(stats["threads"])
        assert stats["bytes_pinned"] >= 8 * 2048
        clear_arena()
