"""Tests of workload construction (phases and items per variant)."""

import pytest

from repro.analysis import variant_box_flops
from repro.machine import build_workload
from repro.schedules import Variant

DOMAIN = (32, 32, 32)


class TestGranularity:
    def test_p_ge_box_single_phase(self):
        wl = build_workload(Variant("series", "P>=Box", "CLO"), 16, DOMAIN)
        assert len(wl.phases) == 1
        assert wl.num_boxes == 8
        assert wl.phases[0].num_items == 8

    def test_p_lt_box_series_slices(self):
        wl = build_workload(Variant("series", "P<Box", "CLO"), 16, DOMAIN)
        assert len(wl.phases) == 8  # boxes sequential
        assert all(p.num_items == 16 for p in wl.phases)

    def test_p_lt_box_overlapped_tiles(self):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="basic")
        wl = build_workload(v, 16, DOMAIN)
        assert len(wl.phases) == 8
        assert all(p.num_items == 8 for p in wl.phases)  # 2^3 tiles

    def test_p_lt_box_wavefront_phases(self):
        v = Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8)
        wl = build_workload(v, 16, DOMAIN)
        # 4 wavefronts per box x 8 boxes.
        assert len(wl.phases) == 32
        widths = [p.num_items for p in wl.phases[:4]]
        assert widths == [1, 3, 3, 1]


class TestAccounting:
    def test_flops_match_analysis(self):
        for v in (
            Variant("series", "P>=Box", "CLO"),
            Variant("series", "P<Box", "CLI"),
            Variant("shift_fuse", "P<Box", "CLO"),
            Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8),
            Variant("overlapped", "P>=Box", "CLO", tile_size=8, intra_tile="basic"),
        ):
            wl = build_workload(v, 16, DOMAIN)
            per_box = variant_box_flops(v, 16).total
            assert wl.total_flops() == pytest.approx(8 * per_box, rel=1e-9), v.label

    def test_total_cells(self):
        wl = build_workload(Variant("series"), 16, DOMAIN)
        assert wl.total_cells == 32**3

    def test_paper_default_domain(self):
        wl = build_workload(Variant("series"), 128)
        assert wl.num_boxes == 24


class TestValidation:
    def test_tile_not_smaller_rejected(self):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=16, intra_tile="basic")
        with pytest.raises(ValueError):
            build_workload(v, 16, DOMAIN)

    def test_indivisible_domain_rejected(self):
        with pytest.raises(ValueError):
            build_workload(Variant("series"), 24, DOMAIN)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            build_workload(Variant("series"), 16, (32, 32), dim=3)

    def test_phase_count_validation(self):
        from repro.machine.workload import Phase, WorkItem
        from repro.analysis.traffic import TrafficModel

        p = Phase("x")
        with pytest.raises(ValueError):
            p.add(WorkItem("i", 1.0, TrafficModel(1.0)), count=0)
