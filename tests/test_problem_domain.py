"""Unit tests for ProblemDomain periodicity."""

import pytest

from repro.box import Box, IntVect, ProblemDomain


class TestBasics:
    def test_default_fully_periodic(self):
        d = ProblemDomain(Box.cube(8, 3))
        assert all(d.is_periodic(i) for i in range(3))

    def test_flag_mismatch(self):
        with pytest.raises(ValueError):
            ProblemDomain(Box.cube(8, 3), periodic=(True, False))

    def test_contains(self):
        d = ProblemDomain(Box.cube(8, 2))
        assert d.contains(IntVect((7, 7)))
        assert not d.contains(IntVect((8, 0)))


class TestPeriodicShifts:
    def test_interior_region_no_shift(self):
        d = ProblemDomain(Box.cube(8, 2))
        shifts = d.periodic_shifts(Box.cube(2, 2, lo=3))
        assert [s.to_tuple() for s in shifts] == [(0, 0)]

    def test_low_edge_region(self):
        d = ProblemDomain(Box.cube(8, 2))
        region = Box.from_extents((-2, 0), (4, 4))
        tuples = {s.to_tuple() for s in d.periodic_shifts(region)}
        assert (0, 0) in tuples and (8, 0) in tuples
        assert len(tuples) == 2

    def test_corner_region(self):
        d = ProblemDomain(Box.cube(8, 2))
        region = Box.from_extents((-2, -2), (4, 4))
        tuples = {s.to_tuple() for s in d.periodic_shifts(region)}
        assert tuples == {(0, 0), (8, 0), (0, 8), (8, 8)}

    def test_non_periodic_direction_excluded(self):
        d = ProblemDomain(Box.cube(8, 2), periodic=(False, True))
        region = Box.from_extents((-2, -2), (4, 4))
        tuples = {s.to_tuple() for s in d.periodic_shifts(region)}
        assert tuples == {(0, 0), (0, 8)}

    def test_empty_region(self):
        d = ProblemDomain(Box.cube(8, 2))
        assert d.periodic_shifts(Box.empty(2)) == []


class TestImageOf:
    def test_wraps_periodic(self):
        d = ProblemDomain(Box.cube(8, 2))
        assert d.image_of(IntVect((-1, 9))) == IntVect((7, 1))

    def test_identity_inside(self):
        d = ProblemDomain(Box.cube(8, 2))
        assert d.image_of(IntVect((3, 4))) == IntVect((3, 4))

    def test_non_periodic_passthrough(self):
        d = ProblemDomain(Box.cube(8, 2), periodic=(False, True))
        assert d.image_of(IntVect((-1, -1))) == IntVect((-1, 7))
