"""Circuit breaker: the deterministic count-based state machine."""

import pytest

from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker


def make(threshold=3, recovery=2, jitter=0, seed=0, on_transition=None):
    return CircuitBreaker(
        "m:simulate", failure_threshold=threshold, recovery_after=recovery,
        probe_jitter=jitter, seed=seed, on_transition=on_transition,
    )


class TestClosed:
    def test_starts_closed_and_allows(self):
        br = make()
        assert br.state == CLOSED
        assert br.allow()

    def test_stays_closed_under_threshold(self):
        br = make(threshold=3)
        br.record_failure()
        br.record_failure()
        assert br.state == CLOSED

    def test_trips_open_at_threshold(self):
        br = make(threshold=3)
        for _ in range(3):
            br.record_failure("injected")
        assert br.state == OPEN
        assert br.last_failure_kind == "injected"
        assert not br.allow()

    def test_success_resets_the_streak(self):
        br = make(threshold=2)
        br.record_failure()
        br.record_success()
        br.record_failure()
        assert br.state == CLOSED

    def test_validation(self):
        with pytest.raises(ValueError):
            make(threshold=0)
        with pytest.raises(ValueError):
            make(recovery=0)


class TestRecovery:
    def test_half_open_after_recovery_denials(self):
        br = make(threshold=1, recovery=3, jitter=0)
        br.record_failure()
        assert br.state == OPEN
        # Exactly `recovery` refusals sit out, then half-open.
        for _ in range(2):
            assert not br.allow()
            assert br.state == OPEN
        assert not br.allow()  # the transitioning denial
        assert br.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        br = make(threshold=1, recovery=1, jitter=0)
        br.record_failure()
        br.allow()  # -> half-open
        assert br.allow()      # the probe
        assert not br.allow()  # a second request while probe in flight

    def test_probe_success_recloses(self):
        br = make(threshold=1, recovery=1, jitter=0)
        br.record_failure()
        br.allow()
        assert br.allow()
        br.record_success()
        assert br.state == CLOSED
        assert br.allow()

    def test_probe_failure_reopens_with_new_generation(self):
        br = make(threshold=1, recovery=1, jitter=0)
        br.record_failure()
        gen = br.generation
        br.allow()
        assert br.allow()
        br.record_failure("timeout")
        assert br.state == OPEN
        assert br.generation == gen + 1


class TestDeterminism:
    def _trajectory(self, seed):
        br = CircuitBreaker(
            "k", failure_threshold=2, recovery_after=2, probe_jitter=3,
            seed=seed,
        )
        states = []
        br.record_failure()
        br.record_failure()
        for _ in range(12):
            br.allow()
            states.append(br.state)
        return states

    def test_same_seed_same_trajectory(self):
        assert self._trajectory(7) == self._trajectory(7)

    def test_jitter_desynchronizes_keys(self):
        # Different keys get different (deterministic) recovery budgets
        # for at least some seed — probes do not stampede in lockstep.
        budgets = set()
        for key in ("m1:sim", "m2:sim", "m3:sim", "m4:sim", "m5:sim"):
            br = CircuitBreaker(
                key, failure_threshold=1, recovery_after=2, probe_jitter=5,
                seed=3,
            )
            br.record_failure()
            denials = 0
            while not br.allow() and br.state != HALF_OPEN:
                denials += 1
            budgets.add(denials)
        assert len(budgets) > 1

    def test_transition_callback_sees_every_edge(self):
        edges = []
        br = make(
            threshold=1, recovery=1, jitter=0,
            on_transition=lambda k, old, new: edges.append((old, new)),
        )
        br.record_failure()   # closed -> open
        br.allow()            # open -> half-open
        assert br.allow()
        br.record_success()   # half-open -> closed
        assert edges == [
            (CLOSED, OPEN), (OPEN, HALF_OPEN), (HALF_OPEN, CLOSED),
        ]
        assert br.transitions == 3
