"""Unit tests of executor building blocks (velocities, range fluxes,
fused sweep, shared-temporary series groups)."""

import numpy as np
import pytest

from repro.box import Box
from repro.exemplar import eval_flux1, random_initial_data, velocity_component
from repro.parallel.partition import _series_shared_groups
from repro.schedules import TileGrid, Variant, compute_velocities, fused_sweep
from repro.schedules.wavefront import range_face_flux
from repro.util import track_allocations


@pytest.fixture(scope="module")
def phi_g():
    return random_initial_data((10, 10, 10), seed=21)  # 6^3 box, 2 ghosts


class TestComputeVelocities:
    def test_shapes(self, phi_g):
        vels = compute_velocities(phi_g, 3)
        assert vels[0].shape == (7, 6, 6)
        assert vels[1].shape == (6, 7, 6)
        assert vels[2].shape == (6, 6, 7)

    def test_values_match_direct_interp(self, phi_g):
        vels = compute_velocities(phi_g, 3)
        for d in range(3):
            sl = tuple(
                slice(None) if ax == d else slice(2, -2) for ax in range(3)
            ) + (velocity_component(d),)
            expect = eval_flux1(phi_g[sl], axis=d)
            assert np.array_equal(vels[d], expect)

    def test_allocations_tagged(self, phi_g):
        with track_allocations() as t:
            compute_velocities(phi_g, 3)
        assert t.count("velocity") == 3
        assert t.total_elements("velocity") == 3 * 7 * 36


class TestRangeFaceFlux:
    def test_full_range_matches_whole_box_flux(self, phi_g):
        vels = compute_velocities(phi_g, 3)
        tile = Box.cube(6, 3)
        for d in range(3):
            flux = range_face_flux(
                phi_g, vels, slice(None), d, 0, 6, tile, 3
            )
            sl = tuple(
                slice(None) if ax == d else slice(2, -2) for ax in range(3)
            ) + (slice(None),)
            face_phi = eval_flux1(phi_g[sl], axis=d)
            expect = face_phi * face_phi[..., velocity_component(d)][..., None]
            assert np.array_equal(flux, expect)

    def test_subrange_is_slice_of_full(self, phi_g):
        vels = compute_velocities(phi_g, 3)
        tile = Box.from_extents((0, 2, 0), (6, 2, 6))
        full = range_face_flux(phi_g, vels, slice(None), 1, 0, 6, Box.cube(6, 3), 3)
        part = range_face_flux(phi_g, vels, slice(None), 1, 2, 4, tile, 3)
        assert np.array_equal(part, full[:, 2:5, :, :][..., :])

    def test_single_component(self, phi_g):
        vels = compute_velocities(phi_g, 3)
        tile = Box.cube(6, 3)
        all_c = range_face_flux(phi_g, vels, slice(None), 0, 0, 6, tile, 3)
        one = range_face_flux(phi_g, vels, 2, 0, 0, 6, tile, 3)
        assert np.array_equal(one, all_c[..., 2])


class TestFusedSweep:
    def test_accumulates_not_overwrites(self, phi_g):
        vels = compute_velocities(phi_g, 3)
        phi1 = np.full((6, 6, 6, 5), 100.0, order="F")
        fused_sweep(phi_g, phi1, vels, slice(None), 3)
        phi1_zero = np.zeros((6, 6, 6, 5), order="F")
        fused_sweep(phi_g, phi1_zero, vels, slice(None), 3)
        assert np.allclose(phi1 - 100.0, phi1_zero)

    def test_unsupported_dim(self, phi_g):
        with pytest.raises(NotImplementedError):
            fused_sweep(phi_g, np.zeros((6,) * 4 + (5,)), [], slice(None), 4)


class TestSharedSeriesGroups:
    def test_group_structure(self, phi_g):
        phi1 = phi_g[2:-2, 2:-2, 2:-2, :].copy(order="F")
        groups = _series_shared_groups(
            phi_g, phi1, 0, 3, 5, clo=True, chunks=3
        )
        assert len(groups) == 9  # 3 directions x (flux1, flux2, accum)
        assert all(len(g.tasks) == 3 for g in groups)

    @pytest.mark.parametrize("clo", [True, False])
    @pytest.mark.parametrize("chunks", [1, 2, 5])
    def test_matches_reference(self, phi_g, clo, chunks):
        from repro.exemplar import reference_kernel

        ref = reference_kernel(phi_g)
        phi1 = phi_g[2:-2, 2:-2, 2:-2, :].copy(order="F")
        groups = _series_shared_groups(
            phi_g, phi1, 0, 3, 5, clo=clo, chunks=chunks
        )
        for g in groups:
            for task in g.tasks:
                task()
        assert np.array_equal(phi1, ref)
