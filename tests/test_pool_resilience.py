"""Pool-level resilience: plan failure handling, fault recovery,
degradation to serial, and shared-pool lifecycle."""

import threading
import time

import numpy as np
import pytest

from repro.exemplar import ExemplarProblem
from repro.parallel.partition import ParallelPlan, TaskGroup
from repro.parallel.pool import (
    PlanExecutionError,
    get_shared_pool,
    run_plan,
    run_schedule_parallel,
    shutdown_shared_pool,
)
from repro.resilience.faults import FaultPlan, FaultSpec, inject_faults
from repro.schedules import Variant, run_schedule_on_level


@pytest.fixture(scope="module")
def problem():
    return ExemplarProblem(domain_cells=(16, 16, 16), box_size=8)


@pytest.fixture(scope="module")
def phi0(problem):
    return problem.make_phi0()


@pytest.fixture(scope="module")
def reference(phi0):
    return run_schedule_on_level(
        Variant("series", "P>=Box", "CLO"), phi0
    ).to_global_array()


def make_plan(tasks) -> ParallelPlan:
    return ParallelPlan(
        Variant("series"), groups=[TaskGroup("g", list(tasks))]
    )


# ------------------------------------------------- fault matrix: pool tasks
class TestPoolFaultMatrix:
    def test_injected_raise_rerun_inline_bitwise(self, phi0, reference):
        v = Variant("series", "P>=Box", "CLO")
        plan = FaultPlan([FaultSpec("pool", "raise", index=3, count=1)])
        with inject_faults(plan):
            r = run_schedule_parallel(v, phi0, 4)
        assert np.array_equal(r.phi1.to_global_array(), reference)
        assert not r.degraded  # inline re-run, no serial fallback needed
        assert any(f.kind == "injected" and f.recovered for f in r.failures)

    def test_stall_fault_just_delays(self, phi0, reference):
        v = Variant("series", "P>=Box", "CLO")
        plan = FaultPlan(
            [FaultSpec("pool", "stall", index=0, count=1, stall_s=0.01)]
        )
        with inject_faults(plan):
            r = run_schedule_parallel(v, phi0, 4)
        assert np.array_equal(r.phi1.to_global_array(), reference)
        assert not r.failures

    def test_corrupt_quarantined_and_rerun_serially(self, phi0, reference):
        v = Variant("series", "P>=Box", "CLO")
        plan = FaultPlan([FaultSpec("pool", "corrupt", count=1)])
        with inject_faults(plan):
            r = run_schedule_parallel(v, phi0, 4)
        assert np.array_equal(r.phi1.to_global_array(), reference)
        assert r.degraded
        nf = [f for f in r.failures if f.kind == "nonfinite"]
        assert nf and nf[0].recovered and nf[0].degraded_to == "serial"

    def test_serial_path_absorbs_injected_raise(self, phi0, reference):
        v = Variant("series", "P>=Box", "CLO")
        plan = FaultPlan([FaultSpec("pool", "raise", index=2, count=1)])
        with inject_faults(plan):
            r = run_schedule_parallel(v, phi0, 1)
        assert np.array_equal(r.phi1.to_global_array(), reference)
        assert any(f.kind == "injected" for f in r.failures)

    def test_fallback_disabled_raises_structured(self, phi0):
        v = Variant("series", "P>=Box", "CLO")
        # A persistent real failure: corrupt with watchdog on and
        # fallback off must raise, not return a poisoned level.
        plan = FaultPlan([FaultSpec("pool", "corrupt", count=1)])
        with inject_faults(plan):
            with pytest.raises(PlanExecutionError) as e:
                run_schedule_parallel(v, phi0, 4, fallback=False)
        assert e.value.failures[0].kind == "nonfinite"


# --------------------------------------------- run_plan failure handling
class TestRunPlanFailures:
    def test_real_exception_cancels_window_and_raises(self):
        executed = []
        lock = threading.Lock()

        def good(i):
            def run():
                time.sleep(0.01)
                with lock:
                    executed.append(i)
            return run

        def bad():
            raise ValueError("boom")

        tasks = [bad] + [good(i) for i in range(20)]
        with pytest.raises(PlanExecutionError) as e:
            run_plan(make_plan(tasks), 2)
        failures = e.value.failures
        assert failures[0].kind == "exception"
        assert failures[0].index == 0
        assert "boom" in failures[0].error
        # The window stopped submitting: queued tasks never ran.
        assert len(executed) < 20

    def test_deadline_abandons_wedged_task(self):
        done = []

        def wedged():
            time.sleep(0.5)
            done.append("late")

        with pytest.raises(PlanExecutionError) as e:
            run_plan(make_plan([wedged]), 2, deadline_s=0.05)
        assert e.value.failures[0].kind == "timeout"

    def test_schedule_degrades_to_serial_on_real_failure(self, phi0, reference, monkeypatch):
        """A plan whose pooled execution breaks for real must still
        produce the bitwise result through the serial fallback."""
        import repro.parallel.pool as pool_mod

        v = Variant("series", "P>=Box", "CLO")
        real_run_plan = pool_mod.run_plan
        calls = {"n": 0}

        def flaky_run_plan(plan, threads, **kw):
            calls["n"] += 1
            if calls["n"] == 1:
                raise PlanExecutionError(
                    [pool_mod.TaskFailure("pool", 0, "g", "exception", "boom")]
                )
            return real_run_plan(plan, threads, **kw)

        monkeypatch.setattr(pool_mod, "run_plan", flaky_run_plan)
        r = pool_mod.run_schedule_parallel(v, phi0, 4)
        assert np.array_equal(r.phi1.to_global_array(), reference)
        assert r.degraded
        assert all(f.degraded_to == "serial" for f in r.failures)


# ------------------------------------------------------- pool lifecycle
class TestPoolLifecycle:
    def test_shutdown_is_idempotent(self):
        get_shared_pool(2)
        shutdown_shared_pool()
        shutdown_shared_pool()  # second call is a clean no-op

    def test_pool_rebuilt_after_shutdown(self):
        get_shared_pool(2)
        shutdown_shared_pool()
        pool = get_shared_pool(2)
        assert pool.submit(lambda: 41 + 1).result() == 42

    def test_concurrent_shutdown_and_rebuild(self):
        errors = []

        def hammer(i):
            try:
                for _ in range(10):
                    if i % 2:
                        shutdown_shared_pool()
                    else:
                        get_shared_pool(2).submit(lambda: None)
            except RuntimeError:
                pass  # submit raced a shutdown: acceptable, not a crash
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # The pool still works afterwards.
        assert get_shared_pool(2).submit(lambda: 7).result() == 7

    def test_run_after_shutdown_rebuilds_transparently(self, phi0, reference):
        shutdown_shared_pool()
        r = run_schedule_parallel(Variant("series", "P>=Box", "CLO"), phi0, 4)
        assert np.array_equal(r.phi1.to_global_array(), reference)
