"""The central correctness property of the reproduction (§IV):

every inter-loop schedule variant computes **bitwise** the same phi1 as
the reference series-of-loops kernel — shifting, fusing, tiling,
wavefronting, and redundant recomputation change only the order work is
done and the temporaries used, never the IEEE result (each face value is
always computed by the same expression from phi0, and every cell
accumulates its x, y, z contributions in the same order).
"""

import numpy as np
import pytest

from repro.exemplar import random_initial_data, reference_kernel
from repro.schedules import (
    Variant,
    enumerate_design_space,
    make_executor,
    practical_variants,
    run_schedule_on_level,
)
from repro.exemplar import ExemplarProblem
from repro.schedules.level import prepare_phi1


N3 = 12  # admits tile sizes 4 and 8 (strictly smaller than the box)


@pytest.fixture(scope="module")
def phi_g_3d():
    return random_initial_data((N3 + 4,) * 3, seed=7)


@pytest.fixture(scope="module")
def ref_3d(phi_g_3d):
    return reference_kernel(phi_g_3d)


class TestPracticalVariantsBitwise:
    @pytest.mark.parametrize(
        "variant",
        [v for v in practical_variants() if v.applicable_to_box(N3)],
        ids=lambda v: v.short_name,
    )
    def test_bitwise_equal_to_reference(self, variant, phi_g_3d, ref_3d):
        ex = make_executor(variant, dim=3, ncomp=5)
        out = ex.run_fresh(phi_g_3d)
        assert np.array_equal(out, ref_3d), variant.label


class TestFullDesignSpaceBitwise:
    """Including the points the paper pruned (e.g. overlapped CLI)."""

    @pytest.mark.parametrize(
        "variant",
        [v for v in enumerate_design_space() if v.applicable_to_box(N3)],
        ids=lambda v: v.short_name,
    )
    def test_bitwise_equal_to_reference(self, variant, phi_g_3d, ref_3d):
        ex = make_executor(variant, dim=3, ncomp=5)
        out = ex.run_fresh(phi_g_3d)
        assert np.array_equal(out, ref_3d), variant.label


class TestTwoDimensional:
    @pytest.mark.parametrize(
        "variant",
        [v for v in practical_variants() if v.applicable_to_box(10)],
        ids=lambda v: v.short_name,
    )
    def test_2d_bitwise(self, variant):
        phi_g = random_initial_data((14, 14), ncomp=4, seed=11)
        ref = reference_kernel(phi_g)
        ex = make_executor(variant, dim=2, ncomp=4)
        out = ex.run_fresh(phi_g)
        assert np.array_equal(out, ref)


class TestRaggedTiles:
    """Tile sizes that do not divide the box exercise edge tiles."""

    @pytest.mark.parametrize("n", [9, 13])
    @pytest.mark.parametrize("tile", [4, 8])
    @pytest.mark.parametrize("category", ["blocked_wavefront", "overlapped"])
    def test_ragged(self, n, tile, category):
        if tile >= n:
            pytest.skip("tile must be strictly smaller")
        phi_g = random_initial_data((n + 4,) * 3, seed=n * tile)
        ref = reference_kernel(phi_g)
        kwargs = {"intra_tile": "shift_fuse"} if category == "overlapped" else {}
        v = Variant(category, "P<Box", "CLO", tile_size=tile, **kwargs)
        out = make_executor(v, dim=3, ncomp=5).run_fresh(phi_g)
        assert np.array_equal(out, ref)


class TestLevelDriver:
    def test_level_equivalence_across_variants(self):
        p = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8)
        phi0 = p.make_phi0()
        base = run_schedule_on_level(
            Variant("series", "P>=Box", "CLO"), phi0
        ).to_global_array()
        for v in (
            Variant("shift_fuse", "P<Box", "CLI"),
            Variant("blocked_wavefront", "P<Box", "CLO", tile_size=4),
            Variant("overlapped", "P>=Box", "CLO", tile_size=4, intra_tile="basic"),
        ):
            out = run_schedule_on_level(v, phi0).to_global_array()
            assert np.array_equal(out, base), v.label

    def test_prepare_phi1_copies_initial_data(self):
        p = ExemplarProblem(domain_cells=(4, 4, 4), box_size=4)
        phi0 = p.make_phi0()
        phi1 = prepare_phi1(phi0)
        assert np.array_equal(
            phi1.to_global_array(), phi0.to_global_array()
        )

    def test_ghost_check(self):
        p = ExemplarProblem(domain_cells=(4, 4, 4), box_size=4, ghost=1)
        with pytest.raises(ValueError):
            run_schedule_on_level(Variant("series"), p.make_phi0(exchange=False))
