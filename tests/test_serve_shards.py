"""The multi-process shard pool: leases, kill -9, WAL recovery.

Process-chaos scenarios pin their kill schedules with explicit
child-side fault specs (picklable, installed inside the shard), so
every death is deterministic; the parent-side plan is always the empty
``quiet()`` plan to shield the tests from ambient ``REPRO_FAULT_SEED``.
"""

import os
import signal
import time

import pytest

from repro.bench.runner import GridPoint
from repro.machine.spec import IVY_DESKTOP
from repro.resilience.faults import FaultPlan, inject_faults
from repro.resilience.journal import WALJournal, sim_result_to_dict
from repro.resilience.retry import (
    PROCESS_FAILURE_KINDS,
    DeadlineExceeded,
    RetryPolicy,
    WorkerLost,
)
from repro.schedules import Variant
from repro.serve import JobService, JobSpec
from repro.serve.shards import (
    LeaseUnavailable,
    ShardPool,
    replay_wal_state,
)

DOMAIN = (32, 32, 32)


def point(threads=1, box=16, engine="simulate"):
    return GridPoint(
        Variant("series"), IVY_DESKTOP, threads, box, DOMAIN, engine=engine
    )


def quiet():
    return inject_faults(FaultPlan([]))


def wait_until(cond, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.01)
    return False


def kill_spec(label, count=1):
    """A child-side plan that SIGKILLs the shard at matching sites."""
    return {"specs": [
        {"scope": "shard", "mode": "kill", "label": label, "count": count},
    ]}


# ------------------------------------------------------------------- pool
class TestShardPool:
    def test_result_bitwise_identical_to_direct(self):
        p = point()
        with quiet(), ShardPool(shards=2) as pool:
            r = pool.run(0, p, "simulate")
        direct = p.evaluate(engine="simulate")
        assert sim_result_to_dict(r) == sim_result_to_dict(direct)

    def test_idle_shard_killed_is_replaced_by_supervisor(self):
        with quiet(), ShardPool(shards=2, supervise_interval_s=0.02) as pool:
            victim = next(iter(pool._shards.values()))
            os.kill(victim.pid, signal.SIGKILL)
            assert wait_until(
                lambda: pool.alive_count() == 2
                and pool.restarts_total >= 1
            )
            # The pool still works after the replacement.
            r = pool.run(1, point(), "simulate")
            assert r is not None

    def test_kill_fault_raises_worker_lost_then_replacement_serves(
        self, tmp_path
    ):
        wal = WALJournal(str(tmp_path / "pool.wal"))
        with quiet(), ShardPool(
            shards=1, wal=wal, fault_params=kill_spec("job0"),
        ) as pool:
            with pytest.raises(WorkerLost) as ei:
                pool.run(0, point(), "simulate", site="job0")
            assert ei.value.signal == signal.SIGKILL
            assert ei.value.exitcode == -signal.SIGKILL
            # The replacement child re-arms a fresh plan, so the retry
            # site must not match the kill label.
            r = pool.run(0, point(), "simulate", site="retry")
            assert r is not None
        state = replay_wal_state(wal.replay())
        assert not state["open_leases"]
        assert state["counts"]["orphans"] == 1
        assert state["counts"]["releases"] == 1
        wal.close()

    def test_worker_lost_classifies_as_process_failure(self):
        from repro.resilience.retry import classify_failure

        with quiet(), ShardPool(
            shards=1, fault_params=kill_spec("k"),
        ) as pool:
            with pytest.raises(WorkerLost) as ei:
                pool.run(0, point(), "simulate", site="k")
        assert classify_failure(ei.value) in PROCESS_FAILURE_KINDS

    def test_deadline_mid_execution_kills_shard(self):
        # A stall fault keeps the child busy well past the deadline; the
        # parent cannot cancel the work, so it kills the process.
        stall = {"specs": [{
            "scope": "shard", "mode": "stall", "label": "slow",
            "count": 1, "stall_s": 5.0,
        }]}
        with quiet(), ShardPool(shards=1, fault_params=stall) as pool:
            with pytest.raises(DeadlineExceeded):
                pool.run(
                    0, point(), "simulate", site="slow",
                    deadline_at=time.monotonic() + 0.05,
                )
            # Killed-for-deadline shard was replaced.
            assert wait_until(lambda: pool.alive_count() == 1)

    def test_checkout_respects_expired_deadline(self):
        with quiet(), ShardPool(shards=1) as pool:
            # Hold the only shard; a checkout whose deadline already
            # expired must raise LeaseUnavailable, not hang.
            held = pool._checkout(None)
            with pytest.raises(LeaseUnavailable):
                pool._checkout(time.monotonic() - 0.001)
            pool._checkin(held)

    def test_child_byte_budget_refuses_job(self):
        from repro.serve.shards import ShardOverBudget

        with quiet(), ShardPool(shards=1, byte_budget_bytes=1) as pool:
            with pytest.raises(ShardOverBudget):
                pool.run(0, point(), "simulate")

    def test_stats_and_gauges(self):
        from repro.obs.metrics import default_registry

        with quiet(), ShardPool(shards=2) as pool:
            pool.run(0, point(), "simulate")
            s = pool.stats()
            assert s["alive"] == 2 and s["target"] == 2
            assert s["leases"]["granted"] == 1
            assert s["leases"]["released"] == 1
            pool.publish_gauges()
        snap = default_registry().snapshot()
        assert snap["gauges"]["serve.shards.alive"] == 2.0


# ---------------------------------------------------------------- WAL state
class TestWalReplay:
    def test_open_lease_visible_until_closed(self):
        records = [
            {"op": "spawn", "shard": "s0", "pid": 1},
            {"op": "lease", "lid": "l0", "seq": 5, "shard": "s0", "site": "a"},
        ]
        state = replay_wal_state(records)
        assert state["open_leases"] == {
            "l0": {"seq": 5, "shard": "s0", "site": "a"},
        }
        state = replay_wal_state(records + [{"op": "release", "lid": "l0"}])
        assert not state["open_leases"]

    def test_recovery_closes_crashed_supervisors_leases(self, tmp_path):
        path = str(tmp_path / "crash.wal")
        # A "supervisor" leases two jobs and crashes (no release): the
        # WAL simply ends.  fsync-on-commit means both leases survive.
        wal = WALJournal(path)
        wal.commit({"op": "spawn", "shard": "s0", "pid": 1})
        wal.commit(
            {"op": "lease", "lid": "l0", "seq": 0, "shard": "s0", "site": "a"}
        )
        wal.commit(
            {"op": "lease", "lid": "l1", "seq": 1, "shard": "s0", "site": "b"}
        )
        wal.close()
        # The restarted supervisor opens the pool over the same log.
        resumed = WALJournal(path, resume=True)
        with quiet(), ShardPool(shards=1, wal=resumed) as pool:
            assert {r["lid"] for r in pool.recovered_leases} == {"l0", "l1"}
            assert pool.wal_recoveries_total == 2
            state = replay_wal_state(resumed.replay())
            assert not state["open_leases"]
            assert state["counts"]["recovered"] == 2
        resumed.close()

    def test_replay_reconstructs_settle_state(self, tmp_path):
        wal_path = str(tmp_path / "svc.wal")
        p = point()
        with quiet(), JobService(workers=1, shards=1, wal=wal_path) as svc:
            out = svc.submit(JobSpec("simulate", p, label="j0")).result(
                timeout=30
            )
            seq = 0
        assert out.status == "ok"
        state = replay_wal_state(wal_path)
        assert state["settled"][str(seq)] == {
            "status": "ok", "reason": "", "degraded_to": None,
        }
        assert not state["open_leases"]


# ----------------------------------------------------------------- service
class TestServiceWithShards:
    def test_ok_path_bitwise_identical(self):
        p = point()
        with quiet(), JobService(workers=2, shards=2) as svc:
            out = svc.submit(JobSpec("simulate", p)).result(timeout=30)
        assert out.status == "ok"
        assert sim_result_to_dict(out.value) == sim_result_to_dict(
            p.evaluate(engine="simulate")
        )

    def test_killed_job_retried_on_replacement_and_breaker_untripped(self):
        # Kill attempt #0 of the simulate rung; the retry (#1) runs on
        # the replacement shard and succeeds.
        faults = kill_spec("j0|simulate#0")
        with quiet(), JobService(
            workers=1, shards=2, shard_faults=faults,
        ) as svc:
            out = svc.submit(
                JobSpec("simulate", point(), label="j0")
            ).result(timeout=30)
            assert out.status == "ok", out
            assert [f.kind for f in out.failures] == ["signal_exit"]
            assert all(f.recovered for f in out.failures)
            # Shard death must not trip the engine's breaker.
            for key, br in svc.breakers().items():
                assert br.state == "closed", (key, br.state)
        assert svc.stats()["shards"]["restarts_total"] >= 1

    def test_deadline_during_replacement_settles_shed_exactly_once(self):
        # Satellite: every shard attempt is killed and the deadline is
        # shorter than the replacement churn — the job must settle as
        # shed (reason deadline), never hang, never double-settle.
        faults = kill_spec("jX|", count=10**6)
        with quiet(), JobService(
            workers=1, shards=1, shard_faults=faults,
            retry_policy=RetryPolicy(
                max_attempts=4, base_delay_s=0.005, max_delay_s=0.02
            ),
            default_deadline_s=0.06,
        ) as svc:
            out = svc.submit(
                JobSpec("simulate", point(), label="jX")
            ).result(timeout=30)
            assert out.status == "shed", out
            assert out.reason == "deadline"
        assert svc.accounted()
        assert svc.counts["shed"] == 1 and svc.counts["submitted"] == 1

    def test_shard_over_budget_sheds_as_byte_budget(self):
        with quiet(), JobService(
            workers=1, shards=1, shard_byte_budget=1,
        ) as svc:
            out = svc.submit(JobSpec("simulate", point())).result(timeout=30)
        assert out.status == "shed"
        assert out.reason == "byte_budget"

    def test_obs_counters_and_gauges_mirror_lifecycle(self):
        from repro.obs.metrics import default_registry

        faults = kill_spec("g0|simulate#0")
        with quiet(), JobService(
            workers=1, shards=2, shard_faults=faults,
        ) as svc:
            svc.submit(JobSpec("simulate", point(), label="g0")).result(
                timeout=30
            )
        snap = default_registry().snapshot()
        counters = snap["counters"]
        assert counters.get("serve.shards.spawned_total", 0) >= 3
        assert counters.get("serve.shards.restarts_total", 0) >= 1
        assert counters.get("serve.shards.leases_orphaned_total", 0) >= 1
        assert "serve.shards.alive" in snap["gauges"]

    def test_stats_census_clean_after_stop(self):
        svc = JobService(workers=1, shards=2)
        with quiet(), svc:
            svc.submit(JobSpec("simulate", point())).result(timeout=30)
        assert svc.census() == []
        assert svc.stats()["shards"]["alive"] == 0
