"""Tests of the bench harness: runner, experiments, reporting."""

import pytest

from repro.bench import (
    SeriesData,
    best_configuration,
    fig1_ghost_ratio,
    format_series,
    format_speedup_summary,
    format_table,
    machine_thread_points,
    thread_sweep,
    time_variant,
)
from repro.machine import IVY_DESKTOP, SANDY_BRIDGE, MachineSpec
from repro.schedules import Variant

SMALL = (32, 32, 32)


class TestRunner:
    def test_time_variant_engines_agree(self):
        v = Variant("series", "P>=Box", "CLO")
        est = time_variant(v, SANDY_BRIDGE, 4, 16, SMALL, engine="estimate")
        sim = time_variant(v, SANDY_BRIDGE, 4, 16, SMALL, engine="simulate")
        assert est.time_s == pytest.approx(sim.time_s, rel=0.05)

    def test_unknown_engine(self):
        with pytest.raises(ValueError):
            time_variant(Variant("series"), SANDY_BRIDGE, 1, 16, SMALL, engine="x")

    def test_thread_sweep_lengths(self):
        rs = thread_sweep(Variant("series"), SANDY_BRIDGE, [1, 2, 4], 16, SMALL)
        assert [r.threads for r in rs] == [1, 2, 4]

    def test_best_configuration_granularity_filter(self):
        v, r = best_configuration(SANDY_BRIDGE, 16, 4, granularity="P>=Box",
                                  domain_cells=SMALL)
        assert v.granularity == "P>=Box"
        assert r.time_s > 0

    def test_best_configuration_no_variants(self):
        with pytest.raises(ValueError):
            best_configuration(SANDY_BRIDGE, 16, 4, domain_cells=SMALL, variants=[])

    def test_best_beats_baseline(self):
        base = time_variant(Variant("series", "P>=Box", "CLO"), SANDY_BRIDGE, 16, 16, SMALL)
        _, best = best_configuration(SANDY_BRIDGE, 16, 16, domain_cells=SMALL)
        assert best.time_s <= base.time_s * 1.0001

    def test_thread_points(self):
        assert machine_thread_points(SANDY_BRIDGE)[-1] == 16
        assert machine_thread_points(IVY_DESKTOP) == [1, 2, 4]
        with pytest.raises(KeyError):
            machine_thread_points(
                MachineSpec("x", 1, 1, 1.0, 32, 256, 1.0, 10.0)
            )


class TestSeriesData:
    def test_add_line_validates_length(self):
        d = SeriesData("t", "x", "y", x=[1, 2])
        with pytest.raises(ValueError):
            d.add_line("bad", [1.0])

    def test_fig1_structure(self):
        d = fig1_ghost_ratio((16, 32))
        assert set(d.lines) == {
            "3D, 2 ghost",
            "3D, 5 ghost",
            "4D, 2 ghost",
            "4D, 5 ghost",
        }


class TestReport:
    def test_format_series(self):
        d = SeriesData("Title", "x", "y", x=[1, 2])
        d.add_line("a", [1.5, 0.75])
        text = format_series(d)
        assert "Title" in text and "1.500" in text and "0.750" in text

    def test_format_table(self):
        text = format_table("T", [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        assert "T" in text and "10" in text and "0.25" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table("T", [])

    def test_speedup_summary(self):
        d = SeriesData("T", "x", "y", x=[1])
        d.add_line("base", [2.0])
        d.add_line("other", [4.0])
        text = format_speedup_summary(d, "base")
        assert "2.00x" in text
        with pytest.raises(KeyError):
            format_speedup_summary(d, "missing")
