"""Unit tests for Box calculus."""

import pytest

from repro.box import Box, CellCentering, IntVect


class TestConstruction:
    def test_from_extents(self):
        b = Box.from_extents((0, 0, 0), (4, 5, 6))
        assert b.size() == (4, 5, 6)
        assert b.num_points() == 120
        assert b.lo == IntVect((0, 0, 0))
        assert b.hi == IntVect((3, 4, 5))

    def test_cube(self):
        b = Box.cube(8, dim=3, lo=-2)
        assert b.size() == (8, 8, 8)
        assert b.lo == IntVect((-2, -2, -2))

    def test_empty(self):
        e = Box.empty(3)
        assert e.is_empty
        assert e.num_points() == 0

    def test_bad_extents(self):
        with pytest.raises(ValueError):
            Box.from_extents((0, 0), (3, 0))

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            Box(IntVect((0, 0)), IntVect((1, 1, 1)))


class TestContainment:
    def test_contains_point(self):
        b = Box.cube(4, 3)
        assert IntVect((0, 0, 0)) in b
        assert IntVect((3, 3, 3)) in b
        assert IntVect((4, 0, 0)) not in b

    def test_contains_box(self):
        outer, inner = Box.cube(8, 3), Box.cube(4, 3, lo=2)
        assert inner in outer
        assert outer not in inner
        assert Box.empty(3) in outer


class TestCalculus:
    def test_grow_shrink(self):
        b = Box.cube(4, 3)
        g = b.grow(2)
        assert g.size() == (8, 8, 8)
        assert g.grow(-2) == b

    def test_grow_dir_sides(self):
        b = Box.cube(4, 2)
        assert b.grow_dir(0, 1).size() == (6, 4)
        assert b.grow_lo(1, 1).size() == (4, 5)
        assert b.grow_hi(1, 2).size() == (4, 6)

    def test_shift(self):
        b = Box.cube(4, 3).shift(2, 5)
        assert b.lo == IntVect((0, 0, 5))

    def test_intersect(self):
        a = Box.from_extents((0, 0), (4, 4))
        b = Box.from_extents((2, 2), (4, 4))
        i = a & b
        assert i.lo == IntVect((2, 2)) and i.hi == IntVect((3, 3))

    def test_disjoint_intersection_empty(self):
        a = Box.cube(2, 2)
        b = Box.cube(2, 2, lo=5)
        assert (a & b).is_empty
        assert not a.intersects(b)

    def test_minbox(self):
        a = Box.cube(2, 2)
        b = Box.cube(2, 2, lo=5)
        m = a.minbox(b)
        assert a in m and b in m
        assert m.size() == (7, 7)

    def test_minbox_with_empty(self):
        a = Box.cube(2, 2)
        assert a.minbox(Box.empty(2)) == a


class TestCentering:
    def test_face_box(self):
        b = Box.cube(4, 3)
        f = b.face_box(1)
        assert f.size() == (4, 5, 4)
        assert f.centering == CellCentering.face(1)
        assert f.enclosed_cells() == b

    def test_face_box_of_face_rejected(self):
        with pytest.raises(ValueError):
            Box.cube(4, 3).face_box(0).face_box(1)

    def test_side_faces(self):
        b = Box.cube(4, 2)
        lo = b.low_side_faces(0)
        hi = b.high_side_faces(0)
        assert lo.size() == (1, 4) and hi.size() == (1, 4)
        assert lo.lo[0] == 0 and hi.lo[0] == 4


class TestDecomposition:
    def test_slices(self):
        b = Box.cube(3, 2)
        sl = list(b.slices(1))
        assert len(sl) == 3
        assert all(s.size(1) == 1 for s in sl)

    def test_slab(self):
        b = Box.cube(8, 3)
        s = b.slab(2, 2, 5)
        assert s.size() == (8, 8, 4)

    def test_tile_even(self):
        tiles = Box.cube(8, 3).tile(4)
        assert len(tiles) == 8
        assert all(t.size() == (4, 4, 4) for t in tiles)

    def test_tile_ragged(self):
        tiles = Box.cube(6, 2).tile(4)
        assert len(tiles) == 4
        sizes = sorted(t.num_points() for t in tiles)
        assert sizes == [4, 8, 8, 16]
        assert sum(sizes) == 36

    def test_tile_covers_disjointly(self):
        b = Box.cube(10, 2)
        tiles = b.tile(3)
        assert sum(t.num_points() for t in tiles) == b.num_points()
        for i, a in enumerate(tiles):
            for c in tiles[i + 1:]:
                assert not a.intersects(c)

    def test_corners(self):
        b = Box.cube(2, 2)
        corners = {c.to_tuple() for c in b.corners()}
        assert corners == {(0, 0), (0, 1), (1, 0), (1, 1)}


class TestNumpyInterop:
    def test_slices_within(self):
        outer = Box.cube(8, 2).grow(2)
        inner = Box.cube(4, 2, lo=1)
        sl = inner.slices_within(outer)
        assert sl == (slice(3, 7), slice(3, 7))

    def test_slices_within_rejects_outside(self):
        with pytest.raises(ValueError):
            Box.cube(4, 2, lo=10).slices_within(Box.cube(8, 2))
