"""JobService: admission, shedding, deadlines, breakers, supervision.

Every scenario pins its fault schedule with an explicit
:class:`FaultPlan` (which also neutralizes any ambient
``REPRO_FAULT_SEED`` plan inside the ``with`` block), runs one worker
where ordering matters, and submits jobs one at a time — so each test
is a deterministic replay.
"""

import random
import time

import pytest

from repro.bench.runner import GridPoint, run_grid
from repro.machine.spec import IVY_DESKTOP, MAGNY_COURS
from repro.resilience.faults import FaultPlan, FaultSpec, inject_faults
from repro.resilience.journal import (
    GridJournal,
    grid_hash,
    point_key,
    sim_result_to_dict,
)
from repro.resilience.retry import NO_RETRY
from repro.schedules import Variant
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    ByteBudget,
    JobService,
    JobSpec,
    Rejected,
    serve_grid,
)

DOMAIN = (32, 32, 32)


def point(threads=1, box=16, engine="estimate", machine=IVY_DESKTOP):
    return GridPoint(
        Variant("series"), machine, threads, box, DOMAIN, engine=engine
    )


def quiet():
    """An empty fault plan: shields the test from ambient fault seeds."""
    return inject_faults(FaultPlan([]))


def settle(service, spec, timeout=30.0):
    return service.submit(spec).result(timeout=timeout)


def wait_until(cond, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return True
        time.sleep(0.005)
    return False


class TestHappyPath:
    def test_engine_job_matches_direct_evaluation(self):
        p = point()
        with quiet(), JobService(workers=2) as svc:
            out = settle(svc, JobSpec("estimate", p))
        assert out.status == "ok"
        assert sim_result_to_dict(out.value) == sim_result_to_dict(p.evaluate())

    def test_grid_batch_matches_run_grid(self):
        points = [point(t, b) for t in (1, 2) for b in (16, 32)]
        with quiet():
            direct = run_grid(points)
            with JobService(workers=2) as svc:
                served = serve_grid(points, svc, batch=True)
        assert [sim_result_to_dict(r) for r in served] == [
            sim_result_to_dict(r) for r in direct
        ]

    def test_per_point_routing_matches_run_grid(self):
        points = [point(t, b) for t in (1, 2) for b in (16, 32)]
        with quiet():
            direct = run_grid(points)
            with JobService(workers=2) as svc:
                served = serve_grid(points, svc, batch=False)
        assert [sim_result_to_dict(r) for r in served] == [
            sim_result_to_dict(r) for r in direct
        ]
        assert svc.stats()["counts"]["ok"] == len(points)

    def test_accounting_is_exact(self):
        with quiet(), JobService(workers=2) as svc:
            for _ in range(6):
                settle(svc, JobSpec("estimate", point()))
        assert svc.accounted()
        assert svc.stats()["counts"] == {
            "submitted": 6, "ok": 6, "shed": 0, "degraded": 0, "failed": 0,
            "coalesced": 0,
        }

    def test_unknown_kind_rejected_at_spec(self):
        with pytest.raises(ValueError):
            JobSpec("banana", point())


class TestAdmission:
    def test_submit_before_start_sheds_shutdown(self):
        svc = JobService(workers=1)
        with quiet():
            out = svc.submit(JobSpec("estimate", point())).result(timeout=1.0)
        assert out.status == "shed"
        assert isinstance(out.value, Rejected)
        assert out.value.reason == "shutdown"

    def test_submit_after_stop_sheds_shutdown(self):
        with quiet():
            svc = JobService(workers=1)
            svc.start()
            svc.stop()
            out = svc.submit(JobSpec("estimate", point())).result(timeout=1.0)
        assert out.reason == "shutdown"

    def test_queue_full_sheds_deterministically(self):
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="stall", label="blocker", stall_s=0.5,
        )])
        with inject_faults(plan), JobService(workers=1, queue_limit=1) as svc:
            blocker = svc.submit(JobSpec("estimate", point(), label="blocker"))
            assert wait_until(lambda: len(svc._queue) == 0)  # taken
            queued = svc.submit(JobSpec("estimate", point(box=32)))
            overflow = svc.submit(JobSpec("estimate", point(box=64)))
            assert overflow.done()  # refused synchronously, at the door
            out = overflow.result(timeout=0)
            assert out.status == "shed"
            assert out.value.reason == "queue_full"
            assert blocker.result(timeout=30.0).status == "ok"
            assert queued.result(timeout=30.0).status == "ok"
        assert svc.stats()["shed_reasons"] == {"queue_full": 1}
        assert svc.accounted()

    def test_byte_budget_sheds_and_recovers(self):
        pressure = {"bytes": 0}
        budget = ByteBudget(100, probe=lambda: pressure["bytes"])
        with quiet(), JobService(workers=1, byte_budget=budget) as svc:
            pressure["bytes"] = 1000
            out = settle(svc, JobSpec("estimate", point()))
            assert out.status == "shed"
            assert out.value.reason == "byte_budget"
            assert "1000" in out.value.detail
            pressure["bytes"] = 0
            assert settle(svc, JobSpec("estimate", point())).status == "ok"
        b = svc.stats()["budget"]
        assert b["rejections"] == 1 and b["high_water"] == 1000

    def test_deadline_expired_before_execution_sheds(self):
        with quiet(), JobService(workers=1) as svc:
            out = settle(svc, JobSpec("estimate", point(), deadline_s=0.0))
        assert out.status == "shed"
        assert out.value.reason == "deadline"
        assert svc.stats()["shed_reasons"] == {"deadline": 1}

    def test_default_deadline_applies(self):
        with quiet(), JobService(workers=1, default_deadline_s=0.0) as svc:
            out = settle(svc, JobSpec("estimate", point()))
        assert out.reason == "deadline"


class TestBreakerLadder:
    def breaker_service(self, journal=None):
        return JobService(
            workers=1, retry_policy=NO_RETRY, journal=journal,
            breaker_threshold=2, breaker_recovery_after=2,
            breaker_probe_jitter=0,
        )

    def test_failure_streak_trips_then_probe_recloses(self):
        # Two injected simulate failures trip the breaker; while it is
        # open jobs degrade straight to estimate; once the fault budget
        # is spent the half-open probe re-closes it.
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="raise", label="|simulate", count=2,
        )])
        p = point(engine="simulate", machine=MAGNY_COURS)
        with inject_faults(plan), self.breaker_service() as svc:
            br = svc.breaker(MAGNY_COURS.name, "simulate")

            out = settle(svc, JobSpec("simulate", p))
            assert out.status == "degraded" and out.degraded_to == "estimate"
            assert br.state == CLOSED

            out = settle(svc, JobSpec("simulate", p))
            assert out.status == "degraded"
            assert br.state == OPEN  # threshold=2 consecutive failures

            out = settle(svc, JobSpec("simulate", p))  # denial 1
            assert out.status == "degraded" and br.state == OPEN

            out = settle(svc, JobSpec("simulate", p))  # denial 2 -> half-open
            assert out.status == "degraded" and br.state == HALF_OPEN

            out = settle(svc, JobSpec("simulate", p))  # the probe, clean now
            assert out.status == "ok"
            assert br.state == CLOSED
        assert svc.stats()["degraded_to"] == {"estimate": 4}
        assert svc.accounted()

    def test_failed_probe_reopens(self):
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="raise", label="|simulate", count=10,
        )])
        p = point(engine="simulate", machine=MAGNY_COURS)
        with inject_faults(plan), self.breaker_service() as svc:
            br = svc.breaker(MAGNY_COURS.name, "simulate")
            for _ in range(4):
                settle(svc, JobSpec("simulate", p))
            assert br.state == HALF_OPEN
            gen = br.generation
            settle(svc, JobSpec("simulate", p))  # probe fails
            assert br.state == OPEN and br.generation == gen + 1

    def test_ladder_falls_back_to_journal(self, tmp_path):
        p = point(engine="simulate")
        with quiet():
            cached = p.evaluate(engine="simulate")
        journal = GridJournal(str(tmp_path / "serve.jsonl"))
        journal.record(grid_hash([p]), 0, point_key(p), cached)
        # Every rung of the ladder fails: the job's own label matches
        # both |simulate and |estimate sites.
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="raise", label="lastresort", count=10,
        )])
        svc = JobService(
            workers=1, retry_policy=NO_RETRY, journal=journal,
            breaker_threshold=10,
        )
        with inject_faults(plan), svc:
            out = settle(svc, JobSpec("simulate", p, label="lastresort"))
        assert out.status == "degraded" and out.degraded_to == "journal"
        assert sim_result_to_dict(out.value) == sim_result_to_dict(cached)
        assert all(f.recovered for f in out.failures)

    def test_ladder_exhausted_without_journal_fails(self):
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="raise", label="doomed", count=10,
        )])
        with inject_faults(plan), self.breaker_service() as svc:
            out = settle(svc, JobSpec(
                "simulate", point(engine="simulate"), label="doomed",
            ))
        assert out.status == "failed"
        assert out.reason == "injected"
        assert out.failures and not any(f.recovered for f in out.failures)

    def test_corrupt_result_classified_as_corruption(self):
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="corrupt", label="poisoned", count=1,
        )])
        with inject_faults(plan), self.breaker_service() as svc:
            out = settle(svc, JobSpec("estimate", point(), label="poisoned"))
            br = svc.breaker(IVY_DESKTOP.name, "estimate")
            assert br.last_failure_kind == "corruption"
        assert out.status == "failed" and out.reason == "corruption"

    def test_success_is_journaled_for_future_fallback(self, tmp_path):
        p = point()
        journal = GridJournal(str(tmp_path / "serve.jsonl"))
        with quiet(), JobService(workers=1, journal=journal) as svc:
            out = settle(svc, JobSpec("estimate", p))
        assert out.status == "ok"
        replay = journal.lookup(grid_hash([p]), 0, point_key(p))
        assert replay is not None
        assert sim_result_to_dict(replay) == sim_result_to_dict(out.value)


class TestSupervision:
    def test_hung_worker_is_replaced(self):
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="stall", label="wedge", stall_s=0.4,
        )])
        svc = JobService(
            workers=1, hang_timeout_s=0.05, supervise_interval_s=0.01,
        )
        with inject_faults(plan), svc:
            out = settle(svc, JobSpec("estimate", point(), label="wedge"))
            assert out.status == "failed" and out.reason == "hung"
            assert out.failures[0].kind == "timeout"
            # The replacement worker keeps serving.
            after = settle(svc, JobSpec("estimate", point()))
            assert after.status == "ok"
        assert svc.stats()["workers"]["replaced"] == 1
        assert svc.accounted()
        # The abandoned worker woke from its stall and exited cleanly.
        assert svc.census() == []

    def test_stop_drains_queued_work(self):
        with quiet():
            svc = JobService(workers=1)
            svc.start()
            tickets = [
                svc.submit(JobSpec("estimate", point(box=b)))
                for b in (16, 32, 16, 32)
            ]
            svc.stop(drain=True)
        assert all(t.result(timeout=0).status == "ok" for t in tickets)
        assert svc.census() == []

    def test_stop_without_drain_sheds_queued_work(self):
        plan = FaultPlan([FaultSpec(
            scope="serve", mode="stall", label="blocker", stall_s=0.3,
        )])
        with inject_faults(plan):
            svc = JobService(workers=1, queue_limit=8)
            svc.start()
            blocker = svc.submit(JobSpec("estimate", point(), label="blocker"))
            assert wait_until(lambda: len(svc._queue) == 0)
            queued = [
                svc.submit(JobSpec("estimate", point(box=32)))
                for _ in range(3)
            ]
            svc.stop(drain=False)
        statuses = {t.result(timeout=0).status for t in queued}
        assert statuses == {"shed"}
        assert blocker.result(timeout=0).status == "ok"
        assert svc.accounted()


class TestVerifyJobs:
    def test_verify_case_served(self):
        from repro.verify import random_config

        config = random_config(random.Random(0))
        with quiet(), JobService(workers=1) as svc:
            out = settle(svc, JobSpec("verify", config), timeout=120.0)
        assert out.status == "ok"
        assert out.value == []
