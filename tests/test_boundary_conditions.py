"""Non-periodic boundary semantics of the exchange.

The paper (§II): "Outside the domain, boundary conditions may be used
to set the ghost cells."  The exchange itself must fill every ghost
cell with a *physical* image and leave out-of-domain ghosts untouched
for the boundary condition to set.
"""

import numpy as np
import pytest

from repro.box import (
    Box,
    ExchangeCopier,
    LevelData,
    ProblemDomain,
    decompose_domain,
)

SENTINEL = -7777.0


def make_level(periodic):
    domain = ProblemDomain(Box.cube(8, 2), periodic=periodic)
    layout = decompose_domain(domain, 4)
    ld = LevelData(layout, ncomp=1, ghost=2)
    ld.set_val(SENTINEL)
    ld.fill_from_function(lambda x, y, c: x + 100.0 * y)
    return ld


class TestNonPeriodic:
    def test_outside_ghosts_untouched(self):
        ld = make_level((False, False))
        ld.exchange()
        fab = ld[0]  # box at the domain's low corner
        outside = fab.window(Box.from_extents((-2, -2), (2, 2)), comp=0)
        assert np.all(outside == SENTINEL)

    def test_interior_ghosts_filled(self):
        ld = make_level((False, False))
        ld.exchange()
        fab = ld[0]
        # Ghost cells reaching into the neighbouring box hold its data.
        strip = fab.window(Box.from_extents((4, 0), (2, 4)), comp=0)
        expect = np.arange(4, 6)[:, None] + 100.0 * np.arange(0, 4)[None, :]
        assert np.array_equal(strip, expect)

    def test_copier_volume_smaller_than_periodic(self):
        dom_np = ProblemDomain(Box.cube(8, 2), periodic=(False, False))
        dom_p = ProblemDomain(Box.cube(8, 2))
        lay_np = decompose_domain(dom_np, 4)
        lay_p = decompose_domain(dom_p, 4)
        assert (
            ExchangeCopier(lay_np, 2).total_ghost_points()
            < ExchangeCopier(lay_p, 2).total_ghost_points()
        )


class TestMixedPeriodicity:
    def test_wraps_only_periodic_direction(self):
        ld = make_level((True, False))
        ld.exchange()
        fab = ld[0]
        # x wraps: ghost at x=-1 holds x=7 data.
        wrapped = fab.window(Box.from_extents((-1, 0), (1, 1)), comp=0).ravel()[0]
        assert wrapped == 7.0
        # y does not: ghost at y=-1 stays sentinel.
        unfilled = fab.window(Box.from_extents((0, -1), (1, 1)), comp=0).ravel()[0]
        assert unfilled == SENTINEL

    def test_kernel_on_interior_boxes_unaffected_by_bc(self):
        # A box fully interior to a non-periodic domain computes the
        # same result as in the periodic case (its ghosts are physical
        # either way).
        from repro.exemplar import reference_kernel

        out = {}
        for periodic in (True, False):
            domain = ProblemDomain(Box.cube(12, 2), periodic=(periodic,) * 2)
            layout = decompose_domain(domain, 4)
            ld = LevelData(layout, ncomp=3, ghost=2)
            ld.fill_from_function(
                lambda x, y, c: np.sin(0.3 * x) + np.cos(0.2 * y) + c
            )
            ld.exchange()
            # The centre box (lo=(4,4)) has no domain-boundary ghosts.
            centre = next(
                i for i in layout if layout.box(i).lo.to_tuple() == (4, 4)
            )
            box = layout.box(centre)
            phi_g = np.asarray(ld[centre].window(box.grow(2)))
            out[periodic] = reference_kernel(phi_g)
        assert np.array_equal(out[True], out[False])
