"""Substrate caches and the parallel grid runner.

Covers the process-wide workload cache, the structural phase-cost memo
key (regression for the old ``id()``-based key), the shared exchange
copier plans, the shared thread pool, ``run_grid``, and the perf
counters / CLI surface.
"""

import pytest

from repro.analysis.traffic import TrafficModel
from repro.bench import GridPoint, run_grid, set_grid_workers, time_variant
from repro.bench.__main__ import main as bench_main
from repro.box import Box, LevelData, ProblemDomain, decompose_domain
from repro.box.copier import clear_copier_cache, shared_copier
from repro.machine import SANDY_BRIDGE, build_workload, estimate_workload
from repro.machine.simulator import clear_phase_cost_cache
from repro.machine.workload import Phase, WorkItem, clear_workload_cache
from repro.parallel import get_shared_pool, run_schedule_parallel, shutdown_shared_pool
from repro.schedules import Variant
from repro.util.perf import format_perf_report, perf, reset_perf


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_workload_cache()
    clear_phase_cost_cache()
    reset_perf()
    yield
    clear_workload_cache()
    clear_phase_cost_cache()
    reset_perf()


V = Variant("series", "P<Box", "CLO")


class TestWorkloadCache:
    def test_identical_requests_share_one_workload(self):
        a = build_workload(V, 16, (32, 32, 32))
        b = build_workload(V, 16, (32, 32, 32))
        assert a is b
        assert perf().get("workload_cache.hits") == 1
        assert perf().get("workload_cache.misses") == 1

    def test_distinct_keys_distinct_workloads(self):
        a = build_workload(V, 16, (32, 32, 32))
        assert build_workload(V, 8, (32, 32, 32)) is not a
        assert build_workload(V, 16, (32, 32, 32), ncomp=3) is not a
        assert build_workload(Variant("shift_fuse", "P<Box", "CLO"), 16, (32, 32, 32)) is not a

    def test_clear_forces_rebuild(self):
        a = build_workload(V, 16, (32, 32, 32))
        clear_workload_cache()
        assert build_workload(V, 16, (32, 32, 32)) is not a

    def test_sequence_domain_normalized(self):
        assert build_workload(V, 16, [32, 32, 32]) is build_workload(
            V, 16, (32, 32, 32)
        )


class TestStructuralPhaseKey:
    """Regression: the estimator memo key must be content-based.

    The old key, ``tuple(id(g) for g in phase.groups)``, could alias two
    different phases when the allocator recycled tuple ids, and never
    hit across calls for equal-content phases.
    """

    def _phase(self, flops, count):
        p = Phase("p")
        p.add(WorkItem("i", flops, TrafficModel(64.0)), count)
        return p

    def test_equal_content_equal_key_across_objects(self):
        assert self._phase(10.0, 4).structure_key() == self._phase(10.0, 4).structure_key()

    def test_different_content_different_key(self):
        base = self._phase(10.0, 4).structure_key()
        assert self._phase(11.0, 4).structure_key() != base
        assert self._phase(10.0, 5).structure_key() != base

    def test_add_invalidates_cached_key(self):
        p = self._phase(10.0, 4)
        before = p.structure_key()
        p.add(WorkItem("j", 5.0, TrafficModel(8.0)))
        after = p.structure_key()
        assert after != before
        assert len(after) == 2

    def test_rebuilt_workload_hits_phase_cost_cache(self):
        # Same content, brand-new Phase/WorkItem objects: the cost cache
        # must hit (the id()-keyed memo never could).
        wl1 = build_workload(V, 16, (32, 32, 32))
        r1 = estimate_workload(wl1, SANDY_BRIDGE, 4)
        misses_after_first = perf().get("phase_cache.misses")
        clear_workload_cache()
        wl2 = build_workload(V, 16, (32, 32, 32))
        assert wl2 is not wl1
        r2 = estimate_workload(wl2, SANDY_BRIDGE, 4)
        assert perf().get("phase_cache.misses") == misses_after_first
        assert perf().get("phase_cache.hits") >= 1
        assert r2.time_s == r1.time_s
        assert r2.phase_times == r1.phase_times

    def test_cached_cost_matches_uncached(self):
        wl = build_workload(V, 16, (32, 32, 32))
        cold = estimate_workload(wl, SANDY_BRIDGE, 4)
        warm = estimate_workload(wl, SANDY_BRIDGE, 4)
        assert warm.time_s == cold.time_s
        assert warm.dram_bytes == cold.dram_bytes
        # Thread count is part of the key: a different count recomputes.
        other = estimate_workload(wl, SANDY_BRIDGE, 2)
        assert other.time_s != cold.time_s


class TestCopierCache:
    def _layout(self, n=8, box=4):
        domain = ProblemDomain(Box.cube(n, 3), periodic=(True,) * 3)
        return decompose_domain(domain, box)

    def test_leveldata_share_plan_per_layout_and_ghost(self):
        clear_copier_cache()
        lay = self._layout()
        a = LevelData(lay, ncomp=1, ghost=2)
        b = LevelData(lay, ncomp=5, ghost=2)
        assert a.copier() is b.copier()
        assert perf().get("copier_cache.hits") >= 1

    def test_distinct_ghost_distinct_plan(self):
        clear_copier_cache()
        lay = self._layout()
        assert shared_copier(lay, 1) is not shared_copier(lay, 2)
        assert shared_copier(lay, 2) is shared_copier(lay, 2)

    def test_content_equal_layouts_share_plan(self):
        # Independently constructed but content-equal layouts hit the
        # same plan: the cache keys on layout content, not identity.
        clear_copier_cache()
        a = shared_copier(self._layout(), 2)
        before = perf().get("copier_cache.hits")
        assert shared_copier(self._layout(), 2) is a
        assert perf().get("copier_cache.hits") == before + 1

    def test_genuinely_distinct_layouts_distinct_plan(self):
        clear_copier_cache()
        assert shared_copier(self._layout(box=4), 2) is not shared_copier(
            self._layout(box=8), 2
        )
        # Same boxes, different rank assignment -> different plan key
        # (off-rank accounting depends on ranks).
        domain = ProblemDomain(Box.cube(8, 3), periodic=(True,) * 3)
        one = decompose_domain(domain, 4, num_ranks=1)
        two = decompose_domain(domain, 4, num_ranks=2)
        assert shared_copier(one, 2) is not shared_copier(two, 2)


class TestSharedPool:
    def test_pool_reused_until_grown(self):
        shutdown_shared_pool()
        p2 = get_shared_pool(2)
        assert get_shared_pool(2) is p2
        assert get_shared_pool(1) is p2  # smaller request, same pool
        p4 = get_shared_pool(4)
        assert p4 is not p2
        assert get_shared_pool(3) is p4
        shutdown_shared_pool()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            get_shared_pool(0)

    def test_run_plan_does_not_recreate_pool(self):
        from repro.exemplar import ExemplarProblem

        shutdown_shared_pool()
        problem = ExemplarProblem(domain_cells=(8, 8, 8), box_size=8)
        phi0 = problem.make_phi0()
        run_schedule_parallel(V, phi0, 2)
        pool = get_shared_pool(2)
        run_schedule_parallel(V, phi0, 2)
        assert get_shared_pool(2) is pool
        shutdown_shared_pool()


class TestRunGrid:
    def _points(self):
        return [
            GridPoint(v, SANDY_BRIDGE, t, 16, (32, 32, 32))
            for v in (V, Variant("shift_fuse", "P<Box", "CLO"))
            for t in (1, 2, 4)
        ]

    def test_parallel_matches_sequential_in_order(self):
        pts = self._points()
        seq = run_grid(pts, max_workers=1)
        par = run_grid(pts, max_workers=4)
        assert [r.time_s for r in par] == [r.time_s for r in seq]
        assert [r.threads for r in par] == [p.threads for p in pts]
        assert [r.variant for r in par] == [p.variant.label for p in pts]

    def test_empty_grid(self):
        assert run_grid([]) == []

    def test_grid_matches_time_variant(self):
        pts = self._points()
        grid = run_grid(pts)
        for p, r in zip(pts, grid):
            direct = time_variant(
                p.variant, p.machine, p.threads, p.box_size, p.domain_cells
            )
            assert r.time_s == direct.time_s


class TestPerfCLI:
    def test_perf_flag_prints_report(self, capsys):
        assert bench_main(["--perf", "fig1"]) == 0
        out = capsys.readouterr().out
        assert "substrate perf counters:" in out
        assert "figure.fig1" in out

    def test_jobs_flag(self, capsys):
        try:
            assert bench_main(["--jobs", "2", "fig1"]) == 0
        finally:
            set_grid_workers(None)
        assert "Fig. 1" in capsys.readouterr().out

    def test_unknown_flag_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["--frobnicate"])
        with pytest.raises(SystemExit):
            bench_main(["--jobs"])

    def test_report_format_hit_rates(self):
        build_workload(V, 16, (32, 32, 32))
        build_workload(V, 16, (32, 32, 32))
        report = format_perf_report()
        assert "workload cache: 1 hits / 1 misses (50.0%)" in report
