"""Tests of machine specifications and derived quantities."""

import pytest

from repro.machine import (
    IVY_BRIDGE,
    IVY_DESKTOP,
    MAGNY_COURS,
    PAPER_MACHINES,
    SANDY_BRIDGE,
    machine_by_name,
)


class TestPaperSpecs:
    """The §VI-A hardware parameters, as printed."""

    def test_magny_cours(self):
        m = MAGNY_COURS
        assert m.cores == 24 and m.sockets == 2
        assert m.ghz == 1.90
        assert m.peak_bw_gbs == pytest.approx(85.3)
        assert m.l3_mb_per_socket == 12.0
        assert m.max_threads == 24

    def test_ivy_bridge(self):
        m = IVY_BRIDGE
        assert m.cores == 20
        assert m.peak_bw_gbs == pytest.approx(102.4)
        assert m.l3_mb_per_socket == 25.0
        assert m.max_threads == 40  # hyperthreading

    def test_sandy_bridge(self):
        m = SANDY_BRIDGE
        assert m.cores == 16
        assert m.bw_gbs_per_socket == pytest.approx(51.2)
        assert m.l3_mb_per_socket == 20.0

    def test_desktop(self):
        m = IVY_DESKTOP
        assert m.cores == 4 and m.sockets == 1
        assert m.peak_bw_gbs == pytest.approx(21.0)
        assert m.l3_mb_per_socket == 6.0

    def test_lookup(self):
        for m in PAPER_MACHINES:
            assert machine_by_name(m.name) is m
        with pytest.raises(KeyError):
            machine_by_name("cray")


class TestDerived:
    def test_compute_rate_smt(self):
        m = IVY_BRIDGE
        full = m.thread_compute_rate(20)
        ht = m.thread_compute_rate(40)
        # Two hyperthreads share a core at smt_speedup total throughput.
        assert ht == pytest.approx(full * m.smt_speedup / 2)
        # Aggregate throughput still improves under HT.
        assert 40 * ht > 20 * full

    def test_compute_rate_bounds(self):
        with pytest.raises(ValueError):
            MAGNY_COURS.thread_compute_rate(0)
        with pytest.raises(ValueError):
            MAGNY_COURS.thread_compute_rate(25)

    def test_cache_share_shrinks(self):
        m = MAGNY_COURS
        c1 = m.cache_per_thread_bytes(1)
        c24 = m.cache_per_thread_bytes(24)
        # A lone thread owns the socket's whole L3 (L2 is not counted;
        # see cache_per_thread_bytes' docstring).
        assert c1 == 12 * 2**20
        assert c24 == c1 / 12

    def test_bandwidth_scaling(self):
        m = SANDY_BRIDGE
        one = m.available_bw_gbs(1)
        # One thread is capped by its core, not the socket.
        assert one <= m.core_bw_cap_gbs
        # Two sockets engaged beyond one thread.
        assert m.available_bw_gbs(16) == pytest.approx(
            2 * m.bw_gbs_per_socket * m.stream_fraction
        )
        assert m.available_bw_gbs(0) == 0.0

    def test_barrier_cost_grows_with_threads(self):
        m = IVY_BRIDGE
        assert m.barrier_seconds(20) > m.barrier_seconds(2) > 0

    def test_threads_per_socket(self):
        assert MAGNY_COURS.threads_per_socket(1) == 1
        assert MAGNY_COURS.threads_per_socket(24) == 12
        assert IVY_DESKTOP.threads_per_socket(4) == 4
