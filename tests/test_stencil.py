"""Unit tests for stencil algebra and standard operators."""

import numpy as np
import pytest

from repro.box import Box
from repro.stencil import (
    Stencil,
    centered_gradient_stencil,
    divergence_stencil,
    face_interp_stencil,
    identity_stencil,
    laplacian_stencil,
    upwind_stencil,
)


class TestFootprint:
    def test_extents(self):
        s = face_interp_stencil(0, dim=1)
        assert s.lo_extent().to_tuple() == (-2,)
        assert s.hi_extent().to_tuple() == (1,)
        assert s.ghost_width() == 2

    def test_required_input_box(self):
        s = face_interp_stencil(0, dim=2)
        out = Box.from_extents((0, 0), (5, 4))  # 5 faces (4 cells + 1)
        need = s.required_input_box(out)
        assert need.lo.to_tuple() == (-2, 0)
        assert need.hi.to_tuple() == (5, 3)

    def test_valid_output_inverse(self):
        s = laplacian_stencil(dim=2)
        inp = Box.cube(8, 2)
        out = s.valid_output_box(inp)
        assert s.required_input_box(out) == inp

    def test_flops(self):
        assert laplacian_stencil(dim=3).num_taps == 7
        assert laplacian_stencil(dim=3).flops_per_point() == 13


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Stencil({}, 2)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            Stencil({(1, 0): 1.0}, 3)

    def test_insufficient_input_rejected(self):
        s = laplacian_stencil(dim=2)
        data = np.zeros((4, 4))
        with pytest.raises(ValueError):
            s.apply(data, Box.cube(4, 2), Box.cube(4, 2))


class TestApply:
    def test_identity(self):
        s = identity_stencil(dim=2)
        data = np.arange(16.0).reshape(4, 4)
        out = s.apply(data, Box.cube(4, 2), Box.cube(4, 2))
        assert np.array_equal(out, data)

    def test_laplacian_of_linear_is_zero(self):
        s = laplacian_stencil(dim=2)
        x, y = np.mgrid[0:8, 0:8]
        data = 3.0 * x + 2.0 * y
        out = s.apply(data, Box.cube(8, 2), Box.cube(6, 2, lo=1))
        assert np.allclose(out, 0.0)

    def test_gradient_of_linear(self):
        s = centered_gradient_stencil(0, dim=2, dx=0.5)
        x, _ = np.mgrid[0:8, 0:8]
        data = 3.0 * x
        out = s.apply(data, Box.cube(8, 2), Box.cube(6, 2, lo=1))
        assert np.allclose(out, 6.0)

    def test_upwind_sign(self):
        pos = upwind_stencil(0, dim=1, velocity=1.0)
        neg = upwind_stencil(0, dim=1, velocity=-1.0)
        assert pos.lo_extent().to_tuple() == (-1,)
        assert neg.hi_extent().to_tuple() == (1,)

    def test_apply_with_component_axis(self):
        s = identity_stencil(dim=2)
        data = np.random.default_rng(0).random((4, 4, 3))
        out = s.apply(data, Box.cube(4, 2), Box.cube(2, 2, lo=1))
        assert out.shape == (2, 2, 3)
        assert np.array_equal(out, data[1:3, 1:3, :])

    def test_apply_into_output_accumulate(self):
        s = identity_stencil(dim=1)
        data = np.ones(4)
        out = np.full(6, 10.0)
        s.apply(data, Box.cube(4, 1), Box.cube(4, 1), out=out,
                out_container=Box.cube(6, 1, lo=-1), accumulate=True)
        assert np.array_equal(out, [10, 11, 11, 11, 11, 10])

    def test_accumulate_without_out_rejected(self):
        s = identity_stencil(dim=1)
        with pytest.raises(ValueError):
            s.apply(np.ones(4), Box.cube(4, 1), Box.cube(4, 1), accumulate=True)


class TestFaceInterpOrder:
    """Eq. 6 must be 4th-order accurate: exact for cubic polynomials."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3])
    def test_exact_on_cell_averaged_monomials(self, k):
        # Cell averages of x^k over [i, i+1]: integral/(1) =
        # ((i+1)^(k+1) - i^(k+1))/(k+1).  The 4th-order face formula
        # recovers the point value at the face exactly for k <= 3.
        s = face_interp_stencil(0, dim=1)
        i = np.arange(-2, 12, dtype=float)
        cell_avg = ((i + 1) ** (k + 1) - i ** (k + 1)) / (k + 1)
        inp_box = Box.from_extents((-2,), (14,))
        out_box = Box.from_extents((0,), (11,))  # faces 0..10
        faces = s.apply(cell_avg, inp_box, out_box)
        # Face f sits at coordinate f (low face of cell f).
        expect = np.arange(0, 11, dtype=float) ** k
        assert np.allclose(faces, expect, atol=1e-12)

    def test_divergence_telescopes(self):
        s = divergence_stencil(0, dim=1)
        flux = np.random.default_rng(1).random(9)  # 9 faces for 8 cells
        inp_box = Box.from_extents((0,), (9,))
        out_box = Box.from_extents((0,), (8,))
        div = s.apply(flux, inp_box, out_box)
        assert np.allclose(div.sum(), flux[-1] - flux[0])
