"""Property-based tests of the inter-level transfer operators and
refinement calculus (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.box import Box
from repro.stencil import prolong_constant, prolong_linear, restrict_average


class TestRefinementProperties:
    @given(
        st.integers(2, 4),
        st.tuples(st.integers(-6, 6), st.integers(-6, 6)),
        st.tuples(st.integers(1, 8), st.integers(1, 8)),
    )
    def test_refine_coarsen_roundtrip(self, ratio, lo, size):
        b = Box.from_extents(lo, size)
        assert b.refine(ratio).coarsen(ratio) == b

    @given(st.integers(2, 4), st.integers(1, 6))
    def test_refined_volume(self, ratio, n):
        b = Box.cube(n, 3)
        assert b.refine(ratio).num_points() == ratio**3 * b.num_points()

    @given(
        st.integers(2, 4),
        st.tuples(st.integers(-6, 6), st.integers(-6, 6)),
        st.tuples(st.integers(1, 8), st.integers(1, 8)),
    )
    def test_coarsen_contains_image(self, ratio, lo, size):
        # Every cell of the original box maps into the coarsened box.
        b = Box.from_extents(lo, size)
        c = b.coarsen(ratio)
        for corner in b.corners():
            coarse_pt = corner // ratio
            assert c.contains(coarse_pt)


@st.composite
def fine_arrays(draw):
    ratio = draw(st.integers(2, 3))
    nx = draw(st.integers(1, 4)) * ratio
    ny = draw(st.integers(1, 4)) * ratio
    comps = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    return rng.uniform(-5, 5, size=(nx, ny, comps)), ratio


class TestTransferProperties:
    @settings(max_examples=40, deadline=None)
    @given(fine_arrays())
    def test_restriction_conserves(self, fine_ratio):
        fine, ratio = fine_ratio
        coarse = restrict_average(fine, ratio)
        assert coarse.sum() * ratio**2 == pytest.approx(fine.sum(), rel=1e-10)

    @settings(max_examples=40, deadline=None)
    @given(fine_arrays())
    def test_prolong_restrict_identity(self, fine_ratio):
        fine, ratio = fine_ratio
        coarse = restrict_average(fine, ratio)
        for prolong in (prolong_constant, prolong_linear):
            back = restrict_average(prolong(coarse, ratio), ratio)
            assert np.allclose(back, coarse, atol=1e-10), prolong.__name__

    @settings(max_examples=40, deadline=None)
    @given(fine_arrays())
    def test_prolong_preserves_bounds_constant(self, fine_ratio):
        fine, ratio = fine_ratio
        coarse = restrict_average(fine, ratio)
        out = prolong_constant(coarse, ratio)
        assert out.min() >= coarse.min() - 1e-12
        assert out.max() <= coarse.max() + 1e-12
