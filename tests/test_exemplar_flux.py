"""Unit tests for the exemplar flux primitives (Eqs. 6-7)."""

import numpy as np
import pytest

from repro.exemplar import (
    accumulate_divergence,
    axslice,
    eval_flux1,
    eval_flux2,
    velocity_component,
)


class TestAxslice:
    def test_views(self):
        a = np.arange(24).reshape(2, 3, 4)
        assert np.array_equal(axslice(a, 1, 1, 3), a[:, 1:3, :])
        assert axslice(a, 2, 0, 2).shape == (2, 3, 2)


class TestEvalFlux1:
    def test_shape(self):
        phi = np.zeros((10, 4, 5))
        out = eval_flux1(phi, axis=0)
        assert out.shape == (7, 4, 5)

    def test_too_few_cells(self):
        with pytest.raises(ValueError):
            eval_flux1(np.zeros((3, 4)), axis=0)

    def test_constant_preserved(self):
        phi = np.full((8,), 3.0)
        faces = eval_flux1(phi, axis=0)
        assert np.allclose(faces, 3.0)

    def test_exact_for_cubic_cell_averages(self):
        i = np.arange(-2.0, 10.0)
        k = 3
        cell_avg = ((i + 1) ** (k + 1) - i ** (k + 1)) / (k + 1)
        faces = eval_flux1(cell_avg, axis=0)
        # Face j of the output corresponds to coordinate i[j+2] = j.
        expect = np.arange(0.0, 9.0) ** k
        assert np.allclose(faces, expect)

    def test_out_parameter(self):
        phi = np.random.default_rng(0).random((8, 3))
        out = np.empty((5, 3))
        r = eval_flux1(phi, axis=0, out=out)
        assert r is out
        assert np.array_equal(out, eval_flux1(phi, axis=0))

    def test_matches_documented_expression(self):
        rng = np.random.default_rng(3)
        phi = rng.random(12)
        faces = eval_flux1(phi, axis=0)
        for f in range(len(faces)):
            c = f + 2  # cell index of the face's high-side cell
            expect = (7.0 / 12.0) * (phi[c - 1] + phi[c]) - (1.0 / 12.0) * (
                phi[c + 1] + phi[c - 2]
            )
            assert faces[f] == expect  # bitwise


class TestEvalFlux2:
    def test_broadcast_component_axis(self):
        face = np.ones((4, 4, 5))
        vel = np.full((4, 4), 2.0)
        out = eval_flux2(face, vel)
        assert out.shape == (4, 4, 5)
        assert np.all(out == 2.0)

    def test_same_rank(self):
        face = np.full((4,), 3.0)
        vel = np.full((4,), 2.0)
        assert np.all(eval_flux2(face, vel) == 6.0)

    def test_rank_mismatch(self):
        with pytest.raises(ValueError):
            eval_flux2(np.ones((4, 4, 5)), np.ones(4))

    def test_out_parameter_in_place(self):
        face = np.full((4, 2), 3.0)
        vel = np.full((4,), 2.0)
        r = eval_flux2(face, vel[:, None], out=face)
        assert r is face
        assert np.all(face == 6.0)


class TestAccumulateDivergence:
    def test_telescoping(self):
        rng = np.random.default_rng(2)
        flux = rng.random((9, 4))
        phi1 = np.zeros((8, 4))
        accumulate_divergence(phi1, flux, axis=0)
        assert np.allclose(phi1.sum(axis=0), flux[-1] - flux[0])

    def test_shape_check(self):
        with pytest.raises(ValueError):
            accumulate_divergence(np.zeros(8), np.zeros(8), axis=0)

    def test_accumulates_not_overwrites(self):
        flux = np.arange(3.0)
        phi1 = np.full(2, 10.0)
        accumulate_divergence(phi1, flux, axis=0)
        assert np.array_equal(phi1, [11.0, 11.0])


class TestVelocityComponent:
    def test_mapping(self):
        assert [velocity_component(d) for d in range(3)] == [1, 2, 3]

    def test_higher_dimensions_allowed(self):
        # Fig. 1 includes 4-D boxes; direction d uses component d+1.
        assert velocity_component(3) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            velocity_component(-1)
