"""Fast-path engine: mode selection, exact agreement, determinism,
the stack-distance cache model, and the compressed phase replay."""

import random

import pytest

from repro.machine import (
    IVY_BRIDGE,
    IVY_DESKTOP,
    SANDY_BRIDGE,
    SetAssociativeCache,
    StackDistanceProfile,
    build_workload,
    engine_mode,
    estimate_workload,
    get_engine_mode,
    resolve_engine_mode,
    set_engine_mode,
    simulate_workload,
)
from repro.machine.fastpath import HAVE_NUMPY, workload_table
from repro.machine.trace import (
    ArrayLayout,
    replay,
    scratch_write_read_trace,
    stencil_sweep_trace,
    stream_trace,
)
from repro.obs import trace as _trace
from repro.schedules import Variant
from repro.util.arena import scratch_arena

VARIANTS = [
    Variant("series", "P>=Box"),
    Variant("series", "P<Box"),
    Variant("shift_fuse", "P<Box", "CLI"),
    Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8),
    Variant("overlapped", "P>=Box", "CLO", tile_size=8, intra_tile="basic"),
]


def rel(a, b):
    return abs(a - b) / max(abs(a), abs(b), 1e-30)


class TestEngineMode:
    def test_default_is_exact(self):
        assert get_engine_mode() == "exact"
        assert resolve_engine_mode() == "exact"

    def test_context_manager_restores(self):
        with engine_mode("fast"):
            assert get_engine_mode() == "fast"
            with engine_mode("auto"):
                assert get_engine_mode() == "auto"
            assert get_engine_mode() == "fast"
        assert get_engine_mode() == "exact"

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            set_engine_mode("warp")

    def test_auto_resolves_by_numpy_presence(self):
        with engine_mode("auto"):
            expected = "fast" if HAVE_NUMPY else "exact"
            assert resolve_engine_mode() == expected


@pytest.mark.skipif(not HAVE_NUMPY, reason="fast path needs numpy")
class TestFastVsExact:
    @pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.short_name)
    def test_agreement_across_machines_and_threads(self, variant):
        wl = build_workload(variant, 16, (64, 64, 64))
        for machine in (SANDY_BRIDGE, IVY_BRIDGE, IVY_DESKTOP):
            for threads in (1, 3, machine.max_threads):
                exact = estimate_workload(wl, machine, threads)
                with engine_mode("fast"):
                    fast = estimate_workload(wl, machine, threads)
                assert rel(exact.time_s, fast.time_s) < 1e-9
                assert rel(exact.flops, fast.flops) < 1e-9
                assert rel(exact.dram_bytes, fast.dram_bytes) < 1e-9
                assert len(exact.phase_times) == len(fast.phase_times)
                worst = max(
                    rel(a, b)
                    for a, b in zip(exact.phase_times, fast.phase_times)
                )
                assert worst < 1e-9

    def test_fast_simulation_tracks_exact(self):
        v = Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8)
        wl = build_workload(v, 32, (64, 64, 64))
        s_exact = simulate_workload(wl, SANDY_BRIDGE, 4)
        with engine_mode("fast"):
            s_fast = simulate_workload(wl, SANDY_BRIDGE, 4)
        assert rel(s_exact.time_s, s_fast.time_s) < 1e-9
        assert s_exact.flops == s_fast.flops
        assert s_exact.dram_bytes == s_fast.dram_bytes

    def test_bitwise_determinism_under_toggles(self):
        wl = build_workload(Variant("series", "P<Box"), 16, (64, 64, 64))
        with engine_mode("fast"):
            base = estimate_workload(wl, IVY_BRIDGE, 8)
            with scratch_arena():
                arena_run = estimate_workload(wl, IVY_BRIDGE, 8)
            with _trace.tracing():
                traced_run = estimate_workload(wl, IVY_BRIDGE, 8)
        for other in (arena_run, traced_run):
            assert other.time_s == base.time_s
            assert other.flops == base.flops
            assert other.dram_bytes == base.dram_bytes
            assert other.phase_times == base.phase_times

    def test_table_cached_on_workload(self):
        wl = build_workload(Variant("series", "P<Box"), 16, (64, 64, 64))
        assert workload_table(wl) is workload_table(wl)

    def test_thread_bound_still_enforced(self):
        wl = build_workload(Variant("series", "P>=Box"), 16, (32, 32, 32))
        with engine_mode("fast"), pytest.raises(ValueError):
            estimate_workload(wl, IVY_DESKTOP, 100)


class TestStackDistanceProfile:
    LINE = 64

    def traces(self):
        a = ArrayLayout(0, (32, 16, 4))
        b = ArrayLayout(10**7, (64, 16))
        yield list(stream_trace(a))
        yield list(stencil_sweep_trace(a, 2))
        yield list(scratch_write_read_trace(b))
        rng = random.Random(11)
        yield [
            (rng.randrange(0, 1 << 14) * 8, rng.random() < 0.3)
            for _ in range(5000)
        ]

    def test_exact_vs_fully_associative_lru(self):
        # Misses AND writebacks match the simulator exactly, for every
        # capacity, from one profiling pass.
        for tr in self.traces():
            prof = StackDistanceProfile.from_trace(tr, self.LINE)
            for kb in (1, 4, 16, 64, 256):
                cap = kb * 1024
                sim = SetAssociativeCache(cap, self.LINE, ways=0)
                replay(iter(tr), sim)
                sim.flush()
                assert prof.misses(cap) == sim.stats.misses
                assert prof.writebacks(cap) == sim.stats.writebacks
                assert prof.dram_bytes(cap) == (
                    sim.stats.misses + sim.stats.writebacks
                ) * self.LINE

    def test_set_associative_within_tolerance(self):
        a = ArrayLayout(0, (32, 16, 4))
        tr = list(stencil_sweep_trace(a, 2))
        prof = StackDistanceProfile.from_trace(tr, self.LINE)
        for kb in (8, 32, 128):
            cap = kb * 1024
            sim = SetAssociativeCache(cap, self.LINE, ways=8)
            replay(iter(tr), sim)
            drift = abs(prof.misses(cap) - sim.stats.misses)
            assert drift / max(prof.total_accesses, 1) < 0.15

    def test_miss_curve_monotone(self):
        tr = list(stencil_sweep_trace(ArrayLayout(0, (32, 16, 4)), 2))
        prof = StackDistanceProfile.from_trace(tr, self.LINE)
        caps = [1024 << k for k in range(10)]
        curve = prof.miss_curve(caps)
        assert curve == sorted(curve, reverse=True)
        assert curve[0] <= prof.total_accesses
        # Huge cache: only compulsory misses remain.
        assert prof.misses(1 << 40) == prof.cold

    def test_access_range_counts_match_per_line_loop(self):
        # The inlined access_range is semantically a per-line access loop.
        a = SetAssociativeCache(4096, 64, ways=8)
        b = SetAssociativeCache(4096, 64, ways=8)
        spans = [(0, 1024, False), (100, 700, True), (8192, 64, False), (0, 1024, False)]
        for start, nbytes, write in spans:
            a.access_range(start, nbytes, write)
            addr = (start // 64) * 64
            while addr < start + nbytes:
                b.access(addr, write)
                addr += 64
        assert a.stats.accesses == b.stats.accesses
        assert a.stats.misses == b.stats.misses
        assert a.stats.writebacks == b.stats.writebacks
        assert a.access_range(0, 0) == 0


class TestCompressedReplay:
    def test_phase_runs_compression_matches_phases(self):
        for v in VARIANTS:
            wl = build_workload(v, 16, (64, 64, 64))
            expanded = []
            for cycle, repeat in wl.phase_runs():
                expanded.extend(list(cycle) * repeat)
            assert expanded == wl.phases

    def test_estimate_scales_with_distinct_phases_not_boxes(self):
        # 4096 boxes replay one cached per-box cycle: phase_times has
        # one entry per expanded phase but only one distinct value.
        wl = build_workload(Variant("series", "P<Box"), 16, (256, 256, 256))
        r = estimate_workload(wl, SANDY_BRIDGE, 4)
        assert len(r.phase_times) == len(wl.phases) == 4096
        assert len(set(r.phase_times)) == 1
        assert r.time_s == pytest.approx(
            r.phase_times[0] * 4096, rel=1e-9
        )
