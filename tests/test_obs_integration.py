"""Observability end-to-end: instrumented layers, bitwise identity, CLI."""

import json

import numpy as np
import pytest

from repro.bench.runner import GridPoint, run_grid
from repro.exemplar import ExemplarProblem
from repro.machine import IVY_DESKTOP
from repro.obs import trace as T
from repro.obs.attribution import attribution_rows, format_attribution
from repro.obs.export import validate_chrome_trace, validate_metrics_json
from repro.obs.metrics import default_registry
from repro.parallel import run_schedule_parallel
from repro.resilience.faults import FaultPlan, FaultSpec, inject_faults
from repro.schedules import Variant, run_schedule_on_level


@pytest.fixture(autouse=True)
def _no_ambient_faults():
    """Span/event counts here are exact; an ambient REPRO_FAULT_SEED
    plan (the CI resilience job) would add retry spans.  Faults are
    injected explicitly where this module tests them."""
    from repro.resilience.faults import set_fault_plan

    old = set_fault_plan(None)
    try:
        yield
    finally:
        set_fault_plan(old)


@pytest.fixture(scope="module")
def problem():
    return ExemplarProblem(domain_cells=(16, 16, 16), box_size=8)


@pytest.fixture(scope="module")
def phi0(problem):
    return problem.make_phi0()


_GRID_VARIANT = Variant("series", "P>=Box", "CLO")


def _points():
    return [GridPoint(_GRID_VARIANT, IVY_DESKTOP, t, 64) for t in (1, 2, 4)]


class TestBitwiseIdentity:
    """Tracing is observation-only: on vs. off must not perturb flux."""

    def test_level_schedule_bitwise_with_tracing(self, phi0):
        v = Variant("shift_fuse", "P<Box", "CLO")
        off = run_schedule_on_level(v, phi0).to_global_array()
        with T.tracing():
            on = run_schedule_on_level(v, phi0).to_global_array()
        assert np.array_equal(off, on)

    @pytest.mark.parametrize("threads", [1, 4])
    def test_parallel_schedule_bitwise_with_tracing(self, phi0, threads):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=4,
                    intra_tile="basic")
        off = run_schedule_parallel(v, phi0, threads).phi1.to_global_array()
        with T.tracing():
            on = run_schedule_parallel(v, phi0, threads).phi1.to_global_array()
        assert np.array_equal(off, on)

    def test_grid_results_identical_with_tracing(self):
        points = _points()
        off = run_grid(points)
        with T.tracing():
            on = run_grid(points)
        assert [r.time_s for r in off] == [r.time_s for r in on]
        assert [r.dram_bytes for r in off] == [r.dram_bytes for r in on]


class TestGridInstrumentation:
    def test_grid_points_are_spanned(self):
        points = _points()
        reg = default_registry()
        hist_before = reg.histogram_snapshot("grid.point_s").count
        dram_before = reg.counter_value("model.dram_bytes")
        with T.tracing() as tracer:
            results = run_grid(points)
        spans = tracer.spans()
        runs = [s for s in spans if s.name == "grid.run"]
        pts = [s for s in spans if s.name == "grid.point"]
        assert len(runs) == 1
        assert runs[0].attrs["points"] == len(points)
        assert len(pts) == len(points)
        for s in pts:
            assert s.attrs["variant"] == _GRID_VARIANT.short_name
            assert s.attrs["machine"] == "ivy_desktop"
            assert s.attrs["model_time_s"] > 0
            assert s.attrs["model_dram_bytes"] > 0
        # Metrics: one histogram observation per point, cumulative
        # modeled DRAM bytes, and counter-track samples in the trace.
        reg = default_registry()
        assert reg.histogram_snapshot("grid.point_s").count \
            == hist_before + len(points)
        assert reg.counter_value("model.dram_bytes") - dram_before \
            == pytest.approx(sum(r.dram_bytes for r in results))
        dram_samples = [c for c in tracer.samples()
                        if c.name == "model.dram_bytes"]
        assert len(dram_samples) == len(points)

    def test_engine_span_wraps_estimate(self):
        p = _points()[0]
        with T.tracing() as tracer:
            p.evaluate()
        engines = [s for s in tracer.spans() if s.name == "engine.estimate"]
        assert engines
        assert engines[0].attrs["machine"] == "ivy_desktop"
        assert engines[0].attrs["model_time_s"] > 0


class TestScheduleInstrumentation:
    def test_parallel_schedule_span_tree(self, phi0):
        v = Variant("series", "P>=Box", "CLO")
        with T.tracing() as tracer:
            run_schedule_parallel(v, phi0, 4)
        by_name = {}
        for s in tracer.spans():
            by_name.setdefault(s.name, []).append(s)
        (sched,) = by_name["schedule.run"]
        assert sched.attrs["variant"] == v.short_name
        assert sched.attrs["degraded"] is False
        (plan_run,) = by_name["plan.run"]
        assert plan_run.attrs["threads"] == 4
        assert by_name["plan.phase"]
        # One pool.task span per box task, each on some worker lane.
        tasks = by_name["pool.task"]
        assert len(tasks) == 8
        assert all(s.parent_id is None for s in tasks)  # worker-thread roots

    def test_level_schedule_spans_boxes(self, phi0):
        v = Variant("series", "P>=Box", "CLO")
        with T.tracing() as tracer:
            run_schedule_on_level(v, phi0)
        by_name = {}
        for s in tracer.spans():
            by_name.setdefault(s.name, []).append(s)
        (level,) = by_name["schedule.level"]
        assert level.attrs["boxes"] == 8
        boxes = by_name["schedule.box"]
        assert len(boxes) == 8
        assert all(b.parent_id == level.span_id for b in boxes)


class TestResilienceEvents:
    def test_injected_fault_and_inline_retry_are_events(self, phi0):
        v = Variant("series", "P>=Box", "CLO")
        plan = FaultPlan([FaultSpec("pool", "raise", index=3, count=1)])
        with T.tracing() as tracer:
            with inject_faults(plan):
                r = run_schedule_parallel(v, phi0, 4)
        assert not r.degraded
        assert any(f.recovered for f in r.failures)
        events = tracer.events()
        faults = [e for e in events if e.name == "fault.injected"]
        assert faults and faults[0].attrs["mode"] == "raise"
        retries = [e for e in events if e.name == "pool.retry_inline"]
        assert retries and retries[0].attrs["index"] == 3

    def test_grid_retry_backoff_events(self):
        from repro.resilience.retry import RetryPolicy

        points = _points()[:1]
        plan = FaultPlan([FaultSpec("grid", "raise", index=0, count=1)])
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        with T.tracing() as tracer:
            with inject_faults(plan):
                results = run_grid(points, policy=policy)
        assert results.ok
        events = tracer.events()
        assert any(e.name == "fault.injected" for e in events)
        assert any(e.name == "grid.retry" for e in events)
        # The failed attempt and the successful retry are both spans.
        pts = [s for s in tracer.spans() if s.name == "grid.point"]
        assert len(pts) == 2
        assert {s.attrs["attempt"] for s in pts} == {1, 2}


class TestAttribution:
    def test_rows_join_model_and_prediction(self):
        points = _points()
        with T.tracing() as tracer:
            run_grid(points)
        rows = attribution_rows(tracer)
        assert len(rows) == len(points)
        for row in rows:
            assert row.variant == _GRID_VARIANT.short_name
            assert row.machine == "ivy_desktop"
            assert row.points == 1
            assert row.model_time_s > 0
            assert row.model_gbs > 0
            assert row.byte_ratio == pytest.approx(1.0)
        text = format_attribution(rows)
        assert _GRID_VARIANT.short_name in text
        assert "byte ratio" in text

    def test_empty_trace_formats(self):
        with T.tracing() as tracer:
            pass
        assert attribution_rows(tracer) == []
        assert "no grid.point spans" in format_attribution([])


class TestCli:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        trace_path = str(tmp_path / "trace.json")
        metrics_path = str(tmp_path / "metrics.json")
        assert main(["--trace", trace_path, "--metrics", metrics_path,
                     "fig1"]) == 0
        out = capsys.readouterr().out
        assert "trace " in out and "metrics " in out
        assert validate_chrome_trace(trace_path) == []
        assert validate_metrics_json(metrics_path) == []
        with open(trace_path) as f:
            doc = json.load(f)
        names = {e["name"] for e in doc["traceEvents"]}
        assert "bench.fig1" in names

    def test_jsonl_trace_flag(self, tmp_path):
        from repro.bench.__main__ import main

        path = str(tmp_path / "trace.jsonl")
        assert main([f"--trace={path}", "fig1"]) == 0
        with open(path) as f:
            rows = [json.loads(line) for line in f]
        assert any(r["name"] == "bench.fig1" for r in rows)

    def test_attribution_requires_trace(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["--attribution", "fig1"])

    def test_validator_cli(self, tmp_path, capsys):
        from repro.bench.__main__ import main as bench_main
        from repro.obs.__main__ import main as obs_main

        trace_path = str(tmp_path / "t.json")
        metrics_path = str(tmp_path / "m.json")
        bench_main(["--trace", trace_path, "--metrics", metrics_path, "fig1"])
        capsys.readouterr()
        assert obs_main(["validate", trace_path,
                         "--metrics", metrics_path]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        bad = str(tmp_path / "bad.json")
        with open(bad, "w") as f:
            json.dump({"traceEvents": [{"ph": "?"}]}, f)
        assert obs_main(["validate", bad]) == 1
