"""Tests of the What/When/Where specification layer."""

import pytest

from repro.analysis import table1_for_variant
from repro.box import IntVect, unit_vector, zero_vector
from repro.schedules import Variant, practical_variants
from repro.schedules.spec import (
    Band,
    FusedStatement,
    ScheduleLegalityError,
    ScheduleSpec,
    dependence_edges,
    exemplar_statements,
    schedule_spec,
    storage_mapping,
    validate_schedule,
)


class TestWhat:
    def test_statement_inventory(self):
        stmts = exemplar_statements(3)
        assert len(stmts) == 9
        names = {s.name for s in stmts}
        assert "flux1_0" in names and "accum_2" in names

    def test_centerings(self):
        stmts = {s.name: s for s in exemplar_statements(3)}
        assert stmts["flux1_1"].centering == 1  # faces normal to y
        assert stmts["accum_1"].centering == -1  # cells

    def test_dependences(self):
        edges = dependence_edges(3)
        assert len(edges) == 9
        # The only nonzero distance: cells read their high-side face.
        nonzero = [e for e in edges if e.distance != zero_vector(3)]
        assert len(nonzero) == 3
        assert all(e.consumer.startswith("accum") for e in nonzero)


class TestWhen:
    @pytest.mark.parametrize(
        "variant", practical_variants(), ids=lambda v: v.short_name
    )
    def test_all_practical_schedules_legal(self, variant):
        validate_schedule(schedule_spec(variant, dim=3))

    def test_series_band_count(self):
        spec = schedule_spec(Variant("series"), 3)
        assert len(spec.bands) == 9

    def test_fused_band_count(self):
        spec = schedule_spec(Variant("shift_fuse"), 3)
        assert len(spec.bands) == 1
        assert len(spec.bands[0].statements) == 9

    def test_overlapped_basic_uses_series_bands(self):
        v = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="basic")
        spec = schedule_spec(v, 3)
        assert len(spec.bands) == 9
        assert all(b.tile_size == 8 for b in spec.bands)

    def test_wavefront_flag(self):
        v = Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8)
        spec = schedule_spec(v, 3)
        assert spec.bands[0].wavefront

    def test_band_queries(self):
        spec = schedule_spec(Variant("series"), 3)
        assert spec.band_of("flux1_0") < spec.band_of("accum_0")
        with pytest.raises(KeyError):
            spec.band_of("nope")
        with pytest.raises(KeyError):
            spec.placement("nope")


class TestLegalityChecker:
    """The checker must actually catch broken schedules."""

    def _fused_band(self, shifts, stages):
        stmts = []
        for d in range(1):
            for i, name in enumerate(("flux1_0", "flux2_0", "accum_0")):
                stmts.append(FusedStatement(name, shifts[i], stages[i]))
        return stmts

    def test_fusion_without_shift_illegal(self):
        # Fusing with zero shifts: accum at i needs the face at i+e_0
        # which has not been computed yet.
        zero = zero_vector(3)
        spec = ScheduleSpec(Variant("shift_fuse"), 3)
        spec.bands = [
            Band("bad", self._fused_band([zero, zero, zero], [0, 1, 2]))
        ]
        # Other statements must be scheduled somewhere for validation.
        for d in (1, 2):
            for i, s in enumerate((f"flux1_{d}", f"flux2_{d}", f"accum_{d}")):
                spec.bands.append(Band(f"p{d}{i}", [FusedStatement(s, zero, i)]))
        with pytest.raises(ScheduleLegalityError, match="does not cover"):
            validate_schedule(spec)

    def test_consumer_before_producer_illegal(self):
        zero = zero_vector(3)
        spec = ScheduleSpec(Variant("series"), 3)
        order = []
        for d in range(3):
            order += [f"accum_{d}", f"flux2_{d}", f"flux1_{d}"]  # reversed!
        spec.bands = [
            Band(s, [FusedStatement(s, zero, 0)]) for s in order
        ]
        with pytest.raises(ScheduleLegalityError, match="before its producer"):
            validate_schedule(spec)

    def test_same_iteration_needs_stage_order(self):
        zero = zero_vector(3)
        e0 = unit_vector(0, 3)
        spec = ScheduleSpec(Variant("shift_fuse"), 3)
        # Correct shifts but flux2 staged after accum.
        stmts = [
            FusedStatement("flux1_0", -e0, 2),
            FusedStatement("flux2_0", -e0, 1),
            FusedStatement("accum_0", zero, 0),
        ]
        spec.bands = [Band("bad-stages", stmts)]
        for d in (1, 2):
            for i, s in enumerate((f"flux1_{d}", f"flux2_{d}", f"accum_{d}")):
                spec.bands.append(Band(f"p{d}{i}", [FusedStatement(s, zero, i)]))
        with pytest.raises(ScheduleLegalityError, match="stages"):
            validate_schedule(spec)


class TestWhere:
    @pytest.mark.parametrize(
        "variant",
        [
            Variant("series", "P>=Box", "CLI"),
            Variant("shift_fuse", "P>=Box", "CLO"),
            Variant("blocked_wavefront", "P<Box", "CLI", tile_size=16),
            Variant("overlapped", "P<Box", "CLO", tile_size=16, intra_tile="shift_fuse"),
        ],
        ids=lambda v: v.category,
    )
    def test_storage_matches_table1(self, variant):
        decls = {d.array: d for d in storage_mapping(variant, 128, 5)}
        table = table1_for_variant(variant, 128, threads=1)
        assert decls["flux"].elements == table.flux
        assert decls["velocity"].elements == table.velocity

    def test_series_clo_velocity_none(self):
        decls = {d.array: d for d in storage_mapping(Variant("series"), 16)}
        assert decls["velocity"].kind == "none"
        assert decls["velocity"].elements == 0

    def test_kinds(self):
        kinds = {
            "series": "full-array",
            "shift_fuse": "rolling",
        }
        for cat, kind in kinds.items():
            decls = storage_mapping(Variant(cat), 16)
            assert decls[0].kind == kind
