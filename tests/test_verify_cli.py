"""The ``python -m repro.verify`` CLI: exit codes, repro replay, flags."""

import json
import os
import subprocess
import sys

import pytest

from repro.verify import VerifyConfig
from repro.verify.__main__ import main
from repro.verify.runner import REPRO_VERSION


def run_cli(*argv, cwd=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return subprocess.run(
        [sys.executable, "-m", "repro.verify", *argv],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd,
    )


class TestMainInProcess:
    """main() called directly — fast paths, no subprocess."""

    def test_small_clean_run_exits_zero(self, tmp_path, capsys):
        rc = main(
            ["--seed", "2014", "--cases", "4", "--out-dir", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "all checks passed" in out
        assert "seed=2014 cases=4" in out

    def test_family_flag_restricts(self, tmp_path, capsys):
        rc = main(
            [
                "--seed", "3", "--cases", "3",
                "--family", "engines",
                "--out-dir", str(tmp_path),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "engines" in out
        assert "bitwise" not in out

    def test_repro_replay_of_passing_case(self, tmp_path, capsys):
        cfg = VerifyConfig(
            family="bitwise",
            dim=2,
            box_size=8,
            domain_mult=(1, 1),
            ncomp=3,
            ghost=2,
            periodic=(True, True),
            variants=("shift_fuse-PltBox-cli",),
            machine="sandy_bridge",
            threads=1,
            arena=False,
            pool=False,
            tracing=False,
            data_seed=7,
        )
        path = tmp_path / "repro-x-0.json"
        path.write_text(
            json.dumps(
                {
                    "version": REPRO_VERSION,
                    "seed": 0,
                    "case": 0,
                    "family": "bitwise",
                    "failures": ["recorded failure"],
                    "config": cfg.to_dict(),
                }
            )
        )
        rc = main(["--repro", str(path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "passes on the current tree" in out
        assert "likely fixed since" in out

    def test_repro_rejects_unknown_version(self, tmp_path, capsys):
        path = tmp_path / "repro-bad.json"
        path.write_text(json.dumps({"version": 999, "config": {}}))
        assert main(["--repro", str(path)]) == 2
        assert "unsupported repro version" in capsys.readouterr().err

    def test_repro_missing_file_is_one_line_error(self, tmp_path, capsys):
        assert main(["--repro", str(tmp_path / "nope.json")]) == 2
        assert "cannot load repro file" in capsys.readouterr().err


class TestSubprocess:
    """One real subprocess run — the exact invocation CI uses, tiny."""

    def test_module_entrypoint(self, tmp_path):
        r = run_cli(
            "--seed", "2014", "--cases", "2", "--out-dir", str(tmp_path)
        )
        assert r.returncode == 0, r.stderr
        assert "all checks passed" in r.stdout
