"""Chaos soak: the four serving invariants under seeded mixed faults."""

import json
import os
import subprocess
import sys

import pytest

from repro.serve.chaos import run_overload_soak, run_soak

INVARIANTS = (
    "no_hung_threads",
    "queue_bound_held",
    "accounting_exact",
    "breakers_reclosed",
)


@pytest.mark.parametrize("seed", [2014, 5])
def test_soak_invariants_hold(seed):
    report = run_soak(seed, duration_cases=40)
    assert report.ok, report.violations
    for name in INVARIANTS:
        assert report.invariants[name], name
    counts = report.stats["counts"]
    total = (
        counts["ok"] + counts["shed"] + counts["degraded"] + counts["failed"]
        + counts["coalesced"]
    )
    assert total == counts["submitted"]


def test_soak_exercises_worker_replacement():
    # The schedule pins a stall (4x the hang budget) on the first point
    # job, so every seed forces at least one abandonment + replacement.
    report = run_soak(11, duration_cases=30)
    assert report.ok, report.violations
    assert report.stats["workers"]["replaced"] >= 1


def test_soak_report_round_trips():
    report = run_soak(3, duration_cases=20)
    d = report.to_dict()
    assert d["seed"] == 3 and d["ok"] is report.ok
    assert set(d["invariants"]) == set(INVARIANTS)
    json.dumps(d, default=str)  # artifact-serializable


PROCESS_INVARIANTS = INVARIANTS + (
    "no_orphaned_leases",
    "wal_replay_consistent",
)


@pytest.mark.parametrize("seed", [2014, 7])
def test_process_chaos_invariants_hold(seed, tmp_path):
    report = run_soak(
        seed, duration_cases=40, shards=2, kill_rate=0.15,
        wal_path=str(tmp_path / f"soak{seed}.wal"),
    )
    assert report.ok, report.violations
    for name in PROCESS_INVARIANTS:
        assert report.invariants[name], name
    # The kill schedule must actually bite: shards died and were
    # replaced, their leases orphaned and closed.
    sh = report.stats["shards"]
    assert sh["restarts_total"] >= 1
    assert sh["leases"]["orphaned"] >= 1
    assert report.stats["wal"]["open_leases"] == 0


def test_process_chaos_cli(tmp_path):
    out = str(tmp_path / "metrics.json")
    wal = str(tmp_path / "soak.wal")
    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_FAULT_SEED", None)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.serve.chaos",
            "--seed", "2014", "--duration-cases", "30",
            "--shards", "2", "--kill-rate", "0.15", "--wal", wal,
            "--metrics-out", out,
        ],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "invariant no_orphaned_leases: PASS" in proc.stdout
    assert "invariant wal_replay_consistent: PASS" in proc.stdout
    assert os.path.exists(wal)
    with open(out) as fh:
        payload = json.load(fh)
    assert payload["report"]["ok"] is True


OVERLOAD_INVARIANTS = (
    "no_hung_threads",
    "queue_bound_held",
    "accounting_exact",
    "goodput_floor",
    "amplification_bounded",
    "limiter_recovered",
    "hedge_ledger_closed",
)


@pytest.mark.parametrize("seed", [2014, 7])
def test_overload_soak_invariants_hold(seed):
    report = run_overload_soak(seed, duration_cases=60)
    assert report.ok, report.violations
    for name in OVERLOAD_INVARIANTS:
        assert report.invariants[name], name
    ov = report.stats["overload"]
    # The soak genuinely overloads: offered rate ~2x measured capacity,
    # and the service still clears the goodput floor.
    assert ov["offered_per_s"] > ov["capacity_per_s"] * 1.5
    assert ov["goodput_ratio"] >= 0.7
    assert ov["pre_storm_limit"] >= 2
    assert ov["recovered_limit"] >= 0.9 * ov["pre_storm_limit"]


def test_overload_soak_storm_actually_bites():
    report = run_overload_soak(2014, duration_cases=60)
    stats = report.stats
    # The retry storm spent or denied budget tokens, and the limiter
    # reacted to the latency injection.
    budgets = stats["adaptive"]["retry_budgets"]
    assert any(b["spent"] or b["denied"] for b in budgets.values())
    assert stats["adaptive"]["limiter"]["backoffs"] >= 1


def test_overload_soak_report_round_trips():
    report = run_overload_soak(3, duration_cases=60)
    d = report.to_dict()
    assert d["seed"] == 3 and d["ok"] is report.ok
    assert set(OVERLOAD_INVARIANTS) <= set(d["invariants"])
    json.dumps(d, default=str)  # artifact-serializable


def test_overload_cli_writes_metrics_artifact(tmp_path):
    out = str(tmp_path / "overload_metrics.json")
    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_FAULT_SEED", None)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.serve.chaos",
            "--overload", "--seed", "2014", "--duration-cases", "60",
            "--metrics-out", out,
        ],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "invariant goodput_floor: PASS" in proc.stdout
    assert "invariant amplification_bounded: PASS" in proc.stdout
    assert "invariant limiter_recovered: PASS" in proc.stdout
    assert "invariant hedge_ledger_closed: PASS" in proc.stdout
    with open(out) as fh:
        payload = json.load(fh)
    assert payload["report"]["ok"] is True


def test_chaos_cli_writes_metrics_artifact(tmp_path):
    out = str(tmp_path / "chaos_metrics.json")
    env = {**os.environ, "PYTHONPATH": "src"}
    env.pop("REPRO_FAULT_SEED", None)
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.serve.chaos",
            "--seed", "2014", "--duration-cases", "25",
            "--metrics-out", out,
        ],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "invariant accounting_exact: PASS" in proc.stdout
    with open(out) as fh:
        payload = json.load(fh)
    assert payload["report"]["ok"] is True
    assert "counters" in payload["metrics"] or payload["metrics"]
