"""Ablation: tile size (paper §VI: "in general tile sizes of 8 and 16
were the most efficient", and tile-32 wavefronts lost their scaling).

Sweeps every tile size for both tiled categories on each machine at
N=128 and full threads."""

from repro.bench import SeriesData, format_series, time_variant
from repro.machine import IVY_BRIDGE, MAGNY_COURS, SANDY_BRIDGE
from repro.schedules import TILE_SIZES, Variant


def tile_sweep():
    data = SeriesData(
        title="Ablation: tile size at N=128, full cores",
        xlabel="tile size",
        ylabel="time (s)",
        x=list(TILE_SIZES),
    )
    for machine in (MAGNY_COURS, IVY_BRIDGE, SANDY_BRIDGE):
        for category, intra in (
            ("overlapped", "shift_fuse"),
            ("blocked_wavefront", None),
        ):
            ys = []
            for t in TILE_SIZES:
                kwargs = {"intra_tile": intra} if intra else {}
                v = Variant(category, "P<Box", "CLO", tile_size=t, **kwargs)
                ys.append(
                    time_variant(v, machine, machine.cores, 128).time_s
                )
            data.add_line(f"{machine.name} {category}", ys)
    return data


def test_ablation_tile_size(benchmark, save_result):
    data = benchmark(tile_sweep)
    save_result("ablation_tile_size", format_series(data))

    # Paper: "in general tile sizes of 8 and 16 were the most
    # efficient" — on every line the better of {8, 16} sits within a
    # few percent of the overall best tile.
    for label, ys in data.lines.items():
        by_tile = dict(zip(data.x, ys))
        best = min(by_tile.values())
        assert min(by_tile[8], by_tile[16]) <= 1.08 * best, (label, by_tile)
    # Tile-32 wavefronts lose their scaling (the paper singles them
    # out: "except for when tiles were size 32").
    for m in ("magny_cours", "ivy_bridge", "sandy_bridge"):
        wf = dict(zip(data.x, data.lines[f"{m} blocked_wavefront"]))
        assert wf[32] > 1.3 * min(wf.values()), m
        # Overlapped tile-4: the 2-ghost stencil ring on a 4-cell tile
        # triples the phi0 reads — a visible penalty vs tile-8.
        ot = dict(zip(data.x, data.lines[f"{m} overlapped"]))
        assert ot[4] > ot[8], m
