"""Fig. 9: fastest configuration per box size, parallelization over
boxes vs within boxes — P>=Box wins small boxes (too little work per
box otherwise), the two converge at N=128."""

from repro.bench import fig9_best_by_box_size, format_series


def test_fig9_best_by_box_size(benchmark, save_result):
    data = benchmark(fig9_best_by_box_size)
    save_result("fig09_best_by_box_size", format_series(data))

    for machine in ("magny_cours", "ivy_bridge"):
        over = data.lines[f"{machine} P>=Box"]
        within = data.lines[f"{machine} P<Box"]
        i16 = data.x.index(16)
        i128 = data.x.index(128)
        # Small boxes: parallelization over boxes clearly better.
        assert within[i16] > 1.15 * over[i16], machine
        # Large boxes: the two approaches converge (within ~40%).
        ratio = within[i128] / over[i128]
        assert 0.5 < ratio < 1.4, (machine, ratio)
        # The gap shrinks monotonically-ish with box size.
        assert within[i128] / over[i128] < within[i16] / over[i16], machine
