"""§VI-B bandwidth text numbers: the Ivy Bridge desktop VTune probes.

Paper measurements: baseline N=16 sustains up to 4.9 GB/s at one thread
and 14.5 GB/s at four; baseline N=128 demands 18.3 GB/s at one thread
and contends for the 21.0 GB/s system bandwidth beyond two; shift-fuse
lowers N=16 to 3.9 GB/s and N=128 to stretches around 9.4 GB/s."""

from repro.bench import desktop_bandwidth_probes, format_table, time_variant
from repro.machine import IVY_DESKTOP
from repro.schedules import Variant


def test_desktop_bandwidth_probes(benchmark, save_result):
    rows = benchmark(desktop_bandwidth_probes)
    save_result(
        "desktop_bandwidth",
        format_table("SVI-B: Ivy Bridge desktop bandwidth probes (GB/s)", rows),
    )
    by = {r["probe"]: r for r in rows}

    # Each modelled probe lands within 2x of the paper's number and
    # preserves every ordering the paper reports.
    for r in rows:
        assert 0.5 < r["model_gbs"] / r["paper_gbs"] < 2.0, r
    # N=128 demands far more bandwidth than N=16 under the baseline.
    assert (
        by["baseline N=128, 1 thread"]["model_gbs"]
        > 3 * by["baseline N=16, 1 thread"]["model_gbs"]
    )
    # Shift-fuse cuts the N=128 bandwidth demand substantially.
    assert (
        by["shift-fuse N=128, 1 thread"]["model_gbs"]
        < 0.75 * by["baseline N=128, 1 thread"]["model_gbs"]
    )
    # Shift-fuse does not increase the N=16 demand.
    assert (
        by["shift-fuse N=16, 1 thread"]["model_gbs"]
        <= by["baseline N=16, 1 thread"]["model_gbs"] * 1.05
    )


def test_desktop_contention_beyond_two_threads(benchmark):
    """Paper: at N=128 the performance 'ceased to improve at all beyond
    two threads' on the desktop."""
    v = Variant("series", "P>=Box", "CLO")

    def run():
        return [
            time_variant(v, IVY_DESKTOP, t, 128).time_s for t in (1, 2, 4)
        ]

    t1, t2, t4 = benchmark(run)
    # Bandwidth already saturated: two threads bring no real gain, and
    # four threads none at all.
    assert t2 <= 1.1 * t1
    assert t4 > 0.9 * t2
