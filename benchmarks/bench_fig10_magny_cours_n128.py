"""Fig. 10: all seven labelled schedules at N=128 on Magny-Cours —
overlapped tiling wins; wavefronts scale but sit offset above;
shift-fuse alone stalls near 8 threads; the baseline is worst."""

from _shapes import final_time

from repro.bench import format_series, format_speedup_summary, schedule_figure


def test_fig10_magny_cours_n128(benchmark, save_result):
    data = benchmark(schedule_figure, "fig10")
    save_result(
        "fig10_magny_cours_n128",
        format_series(data)
        + format_speedup_summary(data, "Shift-Fuse OT-8: P<Box"),
    )
    _assert_schedule_ordering(
        data,
        baseline="Baseline: P>=Box",
        shift_fuse="Shift-Fuse: P>=Box",
        wavefront="Blocked WF-CLO-16: P<Box",
        ot_lines=[
            "Shift-Fuse OT-8: P<Box",
            "Basic-Sched OT-8: P<Box",
            "Shift-Fuse OT-16: P>=Box",
            "Basic-Sched OT-16: P>=Box",
        ],
    )


def _assert_schedule_ordering(data, baseline, shift_fuse, wavefront, ot_lines):
    t_base = final_time(data, baseline)
    t_sf = final_time(data, shift_fuse)
    t_wf = final_time(data, wavefront)
    t_ot = min(final_time(data, l) for l in ot_lines)
    # Overall ordering at full threads: OT < WF < SF < baseline.
    assert t_ot < t_wf < t_sf < t_base
    # OT greatly outperforms the baseline (paper: ~5x on this machine).
    assert t_base / t_ot > 3.0
    # Wavefront scales (beats shift-fuse) but is offset above OT.
    assert t_wf > 1.3 * t_ot
