"""Ablation: box size under a fixed schedule.

The paper reports N=32 and N=64 "fall smoothly in between" N=16 and
N=128 (§VI) and therefore only plots the extremes; this ablation checks
that interpolation property for the baseline, and that the best OT
schedule is essentially box-size-independent."""

from repro.bench import SeriesData, format_series, time_variant
from repro.machine import MAGNY_COURS
from repro.schedules import Variant


def box_size_sweep():
    data = SeriesData(
        title="Ablation: box size at 24 threads (magny_cours)",
        xlabel="box size",
        ylabel="time (s)",
        x=[16, 32, 64, 128],
    )
    base = []
    ot = []
    for n in data.x:
        base.append(
            time_variant(Variant("series", "P>=Box", "CLO"), MAGNY_COURS, 24, n).time_s
        )
        # Box-level parallelism so small boxes stay occupied (an OT
        # P<Box line at N=16 would starve: 8 tiles for 24 threads).
        v = Variant("overlapped", "P>=Box", "CLO", tile_size=8, intra_tile="shift_fuse")
        ot.append(time_variant(v, MAGNY_COURS, 24, n).time_s)
    data.add_line("Baseline P>=Box", base)
    data.add_line("Shift-Fuse OT-8 P>=Box", ot)
    return data


def test_ablation_box_size(benchmark, save_result):
    data = benchmark(box_size_sweep)
    save_result("ablation_box_size", format_series(data))

    base = data.lines["Baseline P>=Box"]
    ot = data.lines["Shift-Fuse OT-8 P>=Box"]
    # Baseline degrades monotonically with box size, and the
    # intermediate sizes interpolate smoothly (each point between its
    # neighbours).
    assert all(a <= b * 1.001 for a, b in zip(base, base[1:]))
    for i in (1, 2):
        assert base[i - 1] * 0.999 <= base[i] <= base[i + 1] * 1.001
    # OT keeps every box size within ~2x of the best (paper: the same
    # efficiency for 128^3 as for 16^3).
    assert max(ot) < 2.0 * min(ot)
    # At N=128 the gap between schedules is the headline factor.
    assert base[-1] / ot[-1] > 3.0
