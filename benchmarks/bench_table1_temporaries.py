"""Table I: temporary storage per schedule — formulas vs the executors'
own accounting vs actual instrumented allocations."""

import numpy as np
import pytest

from repro.analysis import table1_for_variant, table1_temporaries
from repro.bench import format_table, table1
from repro.exemplar import random_initial_data
from repro.schedules import Variant, make_executor
from repro.util import track_allocations


def test_table1_formulas(benchmark, save_result):
    rows = benchmark(table1, 128, 16, 1)
    text = format_table("Table I (N=128, T=16, C=5, P=1)", rows)
    save_result("table1_temporaries", text)

    by_cat = {r["category"]: r for r in rows}
    n, c, t = 128, 5, 16
    # Exact formula checks against the printed table.
    assert by_cat["series"]["flux"] == c * (n + 1) ** 3
    assert by_cat["series"]["velocity"] == (n + 1) ** 3
    assert by_cat["shift_fuse"]["flux"] == 2 + 2 * n + 2 * n * n
    assert by_cat["shift_fuse"]["velocity"] == 3 * (n + 1) ** 3
    assert by_cat["blocked_wavefront"]["flux"] == 2 * (3 * c * n * n)
    assert by_cat["overlapped"]["flux"] == c * (2 + 2 * t + 2 * t * t)
    assert by_cat["overlapped"]["velocity"] == c * 3 * (t + 1) ** 3
    # The storage ordering that motivates the whole study:
    assert (
        by_cat["overlapped"]["flux"] + by_cat["overlapped"]["velocity"]
        < by_cat["shift_fuse"]["flux"] + by_cat["shift_fuse"]["velocity"]
        < by_cat["series"]["flux"] + by_cat["series"]["velocity"]
    )


@pytest.mark.parametrize(
    "variant, n",
    [
        (Variant("series", "P>=Box", "CLI"), 16),
        (Variant("shift_fuse", "P>=Box", "CLO"), 16),
        (Variant("overlapped", "P>=Box", "CLO", tile_size=8, intra_tile="shift_fuse"), 16),
    ],
    ids=["series-cli", "shift-fuse-clo", "ot8-shift-fuse"],
)
def test_instrumented_allocations_bounded_by_table1(benchmark, variant, n):
    """Actual scratch allocations stay within ~2x of Table I's totals
    (the vectorized realization batches rows/planes; it must not grow
    the asymptotic footprint)."""
    phi_g = random_initial_data((n + 4,) * 3, seed=3)

    def run():
        ex = make_executor(variant, dim=3, ncomp=5)
        with track_allocations() as tracker:
            ex.run_fresh(phi_g)
        return tracker

    tracker = benchmark(run)
    peaks = tracker.peak_elements_by_tag()
    table = table1_for_variant(variant, n, c=5, threads=1)
    measured_flux = peaks.get("flux", 0) + peaks.get("flux_cache", 0)
    measured_vel = peaks.get("velocity", 0)
    if table.flux:
        assert measured_flux <= 2.0 * max(table.flux, 1)
    assert measured_vel <= 2.0 * max(table.velocity, 1)


def test_overlapped_p_factor(benchmark):
    """The P multiplier: per-thread tile scratch scales with threads."""

    def sizes():
        return [
            table1_temporaries("overlapped", 128, tile=16, threads=p).total
            for p in (1, 8, 24)
        ]

    s1, s8, s24 = benchmark(sizes)
    assert s8 == 8 * s1 and s24 == 24 * s1
