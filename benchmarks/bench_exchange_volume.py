"""Ghost-exchange volume and cost across box sizes (the paper's §I
motivation: larger boxes cut the exchange volume roughly like Fig. 1).
Runs real exchanges on a scaled-down level."""

import pytest

from repro.analysis import ghost_ratio
from repro.bench import format_table
from repro.box import Box, LevelData, ProblemDomain, decompose_domain


@pytest.mark.parametrize("box", [4, 8, 16])
def test_exchange_walltime(benchmark, box):
    domain = ProblemDomain(Box.cube(32, 3))
    layout = decompose_domain(domain, box)
    ld = LevelData(layout, ncomp=5, ghost=2)
    ld.fill_from_function(lambda x, y, z, c: x + y + z + c)
    ld.exchange()  # builds and caches the copy plan
    benchmark(ld.exchange)


def test_exchange_volume_scales_like_fig1(benchmark, save_result):
    def volumes():
        rows = []
        domain = ProblemDomain(Box.cube(32, 3))
        for box in (4, 8, 16, 32):
            layout = decompose_domain(domain, box)
            ld = LevelData(layout, ncomp=5, ghost=2)
            ld.exchange()
            rows.append(
                {
                    "box_size": box,
                    "ghost_points": ld.stats.points,
                    "bytes": ld.stats.bytes,
                    "ratio": 1 + ld.stats.points / layout.total_cells(),
                    "fig1_ratio": ghost_ratio(box, 3, 2),
                }
            )
        return rows

    rows = benchmark(volumes)
    save_result(
        "exchange_volume", format_table("Ghost exchange volume vs box size", rows)
    )
    # Volume drops monotonically with box size and matches Fig. 1.
    vols = [r["ghost_points"] for r in rows]
    assert all(a > b for a, b in zip(vols, vols[1:]))
    for r in rows:
        assert r["ratio"] == pytest.approx(r["fig1_ratio"], rel=1e-12)
