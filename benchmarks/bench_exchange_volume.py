"""Ghost-exchange volume and cost across box sizes (the paper's §I
motivation: larger boxes cut the exchange volume roughly like Fig. 1).
Runs real exchanges on a scaled-down level, with volumes cross-derived
from the rank-level halo analysis (:mod:`repro.cluster.halo`) — the
same copier-driven plan the distributed scaling model charges to the
interconnect."""

import pytest

from repro.analysis import ghost_ratio
from repro.bench import format_table
from repro.box import Box, LevelData, ProblemDomain, decompose_domain
from repro.cluster import decompose_ranks, halo_plan


@pytest.mark.parametrize("box", [4, 8, 16])
def test_exchange_walltime(benchmark, box):
    domain = ProblemDomain(Box.cube(32, 3))
    layout = decompose_domain(domain, box)
    ld = LevelData(layout, ncomp=5, ghost=2)
    ld.fill_from_function(lambda x, y, z, c: x + y + z + c)
    ld.exchange()  # builds and caches the copy plan
    benchmark(ld.exchange)


def test_exchange_volume_scales_like_fig1(benchmark, save_result):
    def volumes():
        rows = []
        domain = ProblemDomain(Box.cube(32, 3))
        for box in (4, 8, 16, 32):
            layout = decompose_domain(domain, box)
            ld = LevelData(layout, ncomp=5, ghost=2)
            ld.exchange()
            plan = halo_plan(layout, ghost=2)
            rows.append(
                {
                    "box_size": box,
                    "ghost_points": plan.total_points,
                    "executed_points": ld.stats.points,
                    "bytes": ld.stats.bytes,
                    "ratio": 1 + plan.total_points / layout.total_cells(),
                    "fig1_ratio": ghost_ratio(box, 3, 2),
                }
            )
        return rows

    rows = benchmark(volumes)
    save_result(
        "exchange_volume", format_table("Ghost exchange volume vs box size", rows)
    )
    # The halo plan and the executed exchange agree point-for-point:
    # both sides come from the same copier, one analyzed, one run.
    for r in rows:
        assert r["ghost_points"] == r["executed_points"]
    # Volume drops monotonically with box size and matches Fig. 1.
    vols = [r["ghost_points"] for r in rows]
    assert all(a > b for a, b in zip(vols, vols[1:]))
    for r in rows:
        assert r["ratio"] == pytest.approx(r["fig1_ratio"], rel=1e-12)


def test_off_rank_volume_by_policy(benchmark, save_result):
    """Surface-minimizing decomposition beats round-robin on the wire.

    All policies see the same total ghost traffic (it is a property of
    the geometry); what a policy controls is how much crosses a rank
    boundary — the part the interconnect charges for.
    """

    def off_rank():
        rows = []
        for policy in ("round_robin", "block", "surface"):
            dec = decompose_ranks((32, 32, 32), 8, 8, policy)
            plan = halo_plan(dec.layout, ghost=2)
            rows.append(
                {
                    "policy": policy,
                    "total_points": plan.total_points,
                    "off_rank_points": plan.off_rank_points,
                    "off_rank_bytes": plan.off_rank_bytes(ncomp=5),
                    "messages": plan.total_messages(),
                }
            )
        return rows

    rows = benchmark(off_rank)
    save_result(
        "exchange_off_rank",
        format_table("Off-rank exchange volume by rank policy", rows),
    )
    by_policy = {r["policy"]: r for r in rows}
    totals = {r["total_points"] for r in rows}
    assert len(totals) == 1  # geometry fixes the total
    assert (
        by_policy["surface"]["off_rank_points"]
        <= by_policy["block"]["off_rank_points"]
        <= by_policy["round_robin"]["off_rank_points"]
    )
    # Round-robin at 8 ranks on a 4^3 box grid puts every neighbor
    # off-rank; compact policies must strictly improve on that.
    assert (
        by_policy["surface"]["off_rank_points"]
        < by_policy["round_robin"]["off_rank_points"]
    )
