"""Fig. 1: ghost-cell ratio vs box size — analytic lines plus the
measured ratio from real exchange plans."""

import pytest

from repro.analysis import ghost_ratio, measured_ghost_ratio, min_box_size_for_ratio
from repro.bench import fig1_ghost_ratio, format_series
from repro.box import Box, ProblemDomain, decompose_domain


def test_fig1_ghost_ratio(benchmark, save_result):
    data = benchmark(fig1_ghost_ratio)
    save_result("fig01_ghost_ratio", format_series(data))

    # Paper's reading of the figure: a ratio of 1.0 is all-physical; with
    # five ghosts a box size of 64 is necessary to get below 2.0.
    assert min_box_size_for_ratio(2.0, dim=3, nghost=5) <= 64 < 128
    line_3d5 = data.lines["3D, 5 ghost"]
    assert line_3d5[data.x.index(32)] > 2.0
    assert line_3d5[data.x.index(64)] < 2.0
    # Monotone decreasing in box size; increasing in dim and ghosts.
    for label, ys in data.lines.items():
        assert all(a > b for a, b in zip(ys, ys[1:])), label
    for n in data.x:
        i = data.x.index(n)
        assert data.lines["4D, 2 ghost"][i] > data.lines["3D, 2 ghost"][i]
        assert data.lines["3D, 5 ghost"][i] > data.lines["3D, 2 ghost"][i]


def test_fig1_measured_matches_analytic(benchmark):
    """The formula equals what real periodic exchange plans move."""

    def measure():
        out = {}
        for n, box in ((16, 4), (32, 8)):
            domain = ProblemDomain(Box.cube(n, 3))
            layout = decompose_domain(domain, box)
            out[box] = (
                measured_ghost_ratio(layout, 2),
                ghost_ratio(box, dim=3, nghost=2),
            )
        return out

    results = benchmark(measure)
    for box, (measured, analytic) in results.items():
        assert measured == pytest.approx(analytic, rel=1e-12), box
