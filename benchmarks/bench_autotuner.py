"""The autotuner (paper §VII outlook): selection quality and pruning cost.

Checks that analytic pruning never changes the winner while cutting the
number of simulated configurations, and that the recommended schedules
match the paper's findings per box size."""

from repro.bench import format_table
from repro.machine import IVY_BRIDGE, MAGNY_COURS
from repro.tuning import Autotuner


def tune_all():
    rows = []
    for machine in (MAGNY_COURS, IVY_BRIDGE):
        tuner = Autotuner(machine)
        for n in (16, 32, 64, 128):
            result = tuner.tune(n)
            rows.append(
                {
                    "machine": machine.name,
                    "box": n,
                    "best": result.best.variant.label,
                    "time_s": result.best.time_s,
                    "evaluated": len(result.evaluated),
                    "pruned": len(result.pruned),
                    "speedup_vs_baseline": result.speedup_over_baseline(),
                }
            )
    return rows


def test_autotuner_recommendations(benchmark, save_result):
    rows = benchmark(tune_all)
    save_result(
        "autotuner", format_table("Autotuned schedule per (machine, box size)", rows)
    )
    for r in rows:
        # Pruning must do real work at every point.
        assert r["pruned"] > 0
        assert r["evaluated"] > 0
        # Large boxes need the locality schedules; the win grows with N.
        if r["box"] == 128:
            assert "OT" in r["best"]
            assert r["speedup_vs_baseline"] > 1.5
        if r["box"] == 16:
            # Small boxes: over-box parallelism, no big win available.
            assert "P>=Box" in r["best"]


def test_pruned_search_matches_full_search(benchmark):
    def compare():
        out = []
        for n in (16, 128):
            full = Autotuner(MAGNY_COURS, prune=False).tune(n)
            fast = Autotuner(MAGNY_COURS, prune=True).tune(n)
            out.append((full.best.time_s, fast.best.time_s))
        return out

    for full_t, fast_t in benchmark(compare):
        assert abs(full_t - fast_t) < 1e-12
