"""Fig. 11: the seven schedules at N=128 on Ivy Bridge, including the
hyperthreading points — OT-8 with shift-fuse inside clearly wins and
does not slow down under HT."""

from _shapes import final_time

from repro.bench import format_series, schedule_figure


def test_fig11_ivy_bridge_n128(benchmark, save_result):
    data = benchmark(schedule_figure, "fig11")
    save_result("fig11_ivy_bridge_n128", format_series(data))

    base = data.lines["Baseline: P>=Box"]
    sf = data.lines["Shift-Fuse: P>=Box"]
    ot = data.lines["Shift-Fuse OT-8: P<Box"]
    wf = data.lines["Blocked WF-CLI-4: P<Box"]

    i20 = data.x.index(20)
    i40 = data.x.index(40)
    # OT beats everything at the full core count.
    assert ot[i20] < wf[i20]
    assert ot[i20] < sf[i20] < base[i20]
    # No hyperthreading slowdown for the OT schedule.
    assert ot[i40] <= ot[i20] * 1.05
    # The baseline gains essentially nothing from HT (bandwidth-bound).
    assert base[i40] >= base[i20] * 0.85
