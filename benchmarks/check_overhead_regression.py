"""CI gate: harness overhead budgets and the fig9 fast-path speedup.

Compares the ``observability`` section of a freshly produced
``BENCH_harness.json`` against the committed baseline, checks the
serving-layer overhead bar, and requires the recorded cold-fig9
speedups over the frozen pre-fast-path anchor to clear
``--fig9-min-speedup`` (default 5x)::

    python benchmarks/check_overhead_regression.py \
        --baseline /tmp/BENCH_harness.baseline.json \
        --current BENCH_harness.json --tolerance 0.05

A metric fails when it exceeds ``baseline * (1 + tolerance) +
grace``.  The per-call costs sit in the tens-to-hundreds of
nanoseconds, where 5% is below timer and scheduler noise on shared CI
runners, so a small absolute grace (default 200 ns) keeps the gate
meaningful without flapping: a real regression — an extra dict lookup,
an accidental allocation on the disabled path — costs far more than
the grace, while run-to-run jitter costs less.

Exit status: 0 = within budget (or no baseline section to compare),
1 = regression, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Disabled-path metrics the gate protects (the hot ones).
GATED_METRICS = (
    "noop_span_ns",
    "add_event_disabled_ns",
    "counter_inc_ns",
)


def load_section(path: str, name: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    section = doc.get(name, {})
    if not isinstance(section, dict):
        raise ValueError(f"{path}: {name!r} must be an object")
    return section


def load_observability(path: str) -> dict:
    return load_section(path, "observability")


def check(
    baseline: dict, current: dict, tolerance: float, grace_ns: float
) -> list[str]:
    """Regression messages for every gated metric over budget."""
    problems: list[str] = []
    for name in GATED_METRICS:
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            continue
        limit = base * (1.0 + tolerance) + grace_ns
        if cur > limit:
            problems.append(
                f"{name}: {cur:.1f} ns > limit {limit:.1f} ns "
                f"(baseline {base:.1f} ns, tolerance {tolerance:.0%} "
                f"+ {grace_ns:.0f} ns grace)"
            )
    return problems


def check_serve(
    serve: dict, tolerance: float, grace_s: float
) -> list[str]:
    """The serving-overhead bar, absolute against the current run.

    Unlike the observability gate this needs no baseline: the criterion
    is intrinsic — routing a grid through ``repro.serve`` must cost
    within ``tolerance`` of direct ``run_grid``, plus ``grace_s`` of
    absolute slack for scheduler noise at the millisecond scale.
    """
    direct = serve.get("direct_run_grid_s")
    served = serve.get("served_batch_s")
    if direct is None or served is None:
        return []
    problems: list[str] = []
    limit = direct * (1.0 + tolerance) + grace_s
    if served > limit:
        problems.append(
            f"serve overhead: served {served * 1e3:.2f} ms > limit "
            f"{limit * 1e3:.2f} ms (direct {direct * 1e3:.2f} ms, "
            f"tolerance {tolerance:.0%} + {grace_s * 1e3:.0f} ms grace)"
        )
    # Armed-but-idle adaptive overload control (limiter + latency
    # tracking + retry budgets + hedging with nothing to do) pays the
    # same thin-front envelope: its per-job cost is pure bookkeeping.
    adaptive = serve.get("served_adaptive_s")
    if adaptive is not None:
        if adaptive > limit:
            problems.append(
                f"adaptive-idle overhead: served {adaptive * 1e3:.2f} ms "
                f"> limit {limit * 1e3:.2f} ms (direct "
                f"{direct * 1e3:.2f} ms, tolerance {tolerance:.0%} + "
                f"{grace_s * 1e3:.0f} ms grace)"
            )
        if serve.get("adaptive_idle") is False:
            problems.append(
                "adaptive-idle leg was not idle: the loop backed off, "
                "hedged, or spent budget during the overhead measurement"
            )
    # Process shards: per-point pipe round-trips through two child
    # processes, gated at 10% + 20 ms — wider than the thread bar
    # because each point pays a pickle/pipe hop, but still thin.
    shards = serve.get("served_shards_s")
    if shards is not None:
        shard_limit = direct * 1.10 + 0.020
        if shards > shard_limit:
            problems.append(
                f"shard overhead: served {shards * 1e3:.2f} ms > limit "
                f"{shard_limit * 1e3:.2f} ms (direct {direct * 1e3:.2f} ms, "
                f"tolerance 10% + 20 ms grace)"
            )
    return problems


def check_cluster(cluster: dict) -> list[str]:
    """The served multi-node scaling bar, absolute against the run.

    A ``cluster`` job routes only its per-rank-shape engine evaluations
    through the service — the decomposition and halo plan are built
    parent-side — so the served step must stay within the shard bar:
    10% of the direct ``ClusterPoint.evaluate``, plus 20 ms grace.
    """
    direct = cluster.get("direct_step_s")
    served = cluster.get("served_step_s")
    if direct is None or served is None:
        return []
    limit = direct * 1.10 + 0.020
    if served > limit:
        return [
            f"cluster overhead: served {served * 1e3:.2f} ms > limit "
            f"{limit * 1e3:.2f} ms (direct {direct * 1e3:.2f} ms, "
            f"tolerance 10% + 20 ms grace)"
        ]
    return []


def check_memo(memo: dict, tolerance: float, min_speedup: float) -> list[str]:
    """The memo-path bars, absolute against the current run.

    The cold (miss) leg pays the thin-front envelope against an equally
    cold direct ``run_grid`` — within ``tolerance`` plus 10 ms grace —
    so keying + encoding + the LRU put stay invisible next to the grid
    evaluation they front.  The warm (100% hit) leg must repay at least
    ``min_speedup`` over cold with a bitwise-identical grid hash; a
    hit that is fast but different is a correctness bug, not a win.
    """
    direct = memo.get("direct_cold_s")
    cold = memo.get("served_cold_s")
    if direct is None or cold is None:
        return []
    problems: list[str] = []
    limit = direct * (1.0 + tolerance) + 0.010
    if cold > limit:
        problems.append(
            f"memo cold overhead: served {cold * 1e3:.2f} ms > limit "
            f"{limit * 1e3:.2f} ms (direct {direct * 1e3:.2f} ms, "
            f"tolerance {tolerance:.0%} + 10 ms grace)"
        )
    speedup = memo.get("warm_speedup")
    if speedup is not None and speedup < min_speedup:
        problems.append(
            f"memo warm speedup: {speedup:.1f}x < required "
            f"{min_speedup:.1f}x (cold {cold * 1e3:.2f} ms, warm "
            f"{memo.get('served_warm_s', 0) * 1e3:.2f} ms)"
        )
    if memo.get("bitwise_equal") is False:
        problems.append(
            "memo warm grid is not bitwise-identical to the cold grid"
        )
    return problems


def check_fig9(fig9: dict, min_speedup: float) -> list[str]:
    """The fast-path speedup bar, absolute against the frozen anchor.

    ``bench_harness_overhead.py`` records cold fig9 wall time under each
    engine mode together with the frozen pre-fast-path anchor; every
    recorded speedup must clear ``min_speedup``.
    """
    problems: list[str] = []
    frozen = fig9.get("frozen_cold_s")
    for name, value in sorted(fig9.items()):
        if not name.startswith("speedup_"):
            continue
        if value < min_speedup:
            problems.append(
                f"fig9 {name}: {value:.1f}x < required {min_speedup:.1f}x "
                f"(frozen anchor {frozen} s)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_harness.json")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_harness.json")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative growth (default 0.05)")
    parser.add_argument("--grace-ns", type=float, default=200.0,
                        help="absolute noise allowance per metric (ns)")
    parser.add_argument("--serve-grace-s", type=float, default=0.010,
                        help="absolute allowance for the serve gate (s)")
    parser.add_argument("--fig9-min-speedup", type=float, default=5.0,
                        help="required cold-fig9 speedup over the frozen "
                        "pre-fast-path anchor (default 5.0)")
    parser.add_argument("--memo-min-speedup", type=float, default=5.0,
                        help="required 100%%-hit memo speedup over the "
                        "cold serve leg (default 5.0)")
    args = parser.parse_args(argv)

    try:
        baseline = load_observability(args.baseline)
        current = load_observability(args.current)
        serve = load_section(args.current, "serve")
        cluster = load_section(args.current, "cluster")
        fig9 = load_section(args.current, "fig9_fast_path")
        memo = load_section(args.current, "memo")
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    problems: list[str] = []
    if not baseline:
        print(
            f"{args.baseline}: no observability baseline yet; obs gate skipped"
        )
    elif not current:
        print(f"error: {args.current} has no observability section",
              file=sys.stderr)
        return 1
    else:
        problems.extend(check(baseline, current, args.tolerance, args.grace_ns))
        for name in GATED_METRICS:
            if name in baseline and name in current:
                print(
                    f"{name}: baseline {baseline[name]:.1f} ns -> "
                    f"current {current[name]:.1f} ns"
                )

    if serve:
        problems.extend(check_serve(serve, args.tolerance, args.serve_grace_s))
        print(
            f"serve: direct {serve.get('direct_run_grid_s', 0) * 1e3:.2f} ms "
            f"-> served {serve.get('served_batch_s', 0) * 1e3:.2f} ms "
            f"(ratio {serve.get('overhead_ratio', 0):.3f})"
        )
        if serve.get("served_adaptive_s") is not None:
            print(
                f"serve --adaptive (idle): "
                f"{serve['served_adaptive_s'] * 1e3:.2f} ms "
                f"(ratio {serve.get('adaptive_overhead_ratio', 0):.3f}, "
                f"idle={serve.get('adaptive_idle')})"
            )
        if serve.get("served_shards_s") is not None:
            print(
                f"serve --shards 2: "
                f"{serve['served_shards_s'] * 1e3:.2f} ms "
                f"(ratio {serve.get('shards_overhead_ratio', 0):.3f})"
            )
    else:
        print(f"{args.current}: no serve section yet; serve gate skipped")

    if cluster:
        problems.extend(check_cluster(cluster))
        print(
            f"cluster ({cluster.get('nodes')} nodes): direct "
            f"{cluster.get('direct_step_s', 0) * 1e3:.2f} ms -> served "
            f"{cluster.get('served_step_s', 0) * 1e3:.2f} ms "
            f"(ratio {cluster.get('overhead_ratio', 0):.3f})"
        )
    else:
        print(f"{args.current}: no cluster section yet; cluster gate skipped")

    if memo:
        problems.extend(
            check_memo(memo, args.tolerance, args.memo_min_speedup)
        )
        print(
            f"memo: cold {memo.get('served_cold_s', 0) * 1e3:.2f} ms "
            f"(direct {memo.get('direct_cold_s', 0) * 1e3:.2f} ms) -> "
            f"warm {memo.get('served_warm_s', 0) * 1e3:.2f} ms "
            f"({memo.get('warm_speedup', 0)}x, bitwise_equal="
            f"{memo.get('bitwise_equal')})"
        )
    else:
        print(f"{args.current}: no memo section yet; memo gate skipped")

    if fig9:
        problems.extend(check_fig9(fig9, args.fig9_min_speedup))
        print(
            f"fig9 fast path: frozen {fig9.get('frozen_cold_s')} s -> "
            f"exact {fig9.get('cold_exact_s')} s "
            f"({fig9.get('speedup_exact_vs_frozen')}x), "
            f"fast {fig9.get('cold_fast_s')} s "
            f"({fig9.get('speedup_fast_vs_frozen')}x)"
        )
    else:
        print(f"{args.current}: no fig9_fast_path section yet; gate skipped")

    if problems:
        print("overhead regression:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("harness overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
