"""CI gate: fail when the observability no-op overhead regresses.

Compares the ``observability`` section of a freshly produced
``BENCH_harness.json`` against the committed baseline::

    python benchmarks/check_overhead_regression.py \
        --baseline /tmp/BENCH_harness.baseline.json \
        --current BENCH_harness.json --tolerance 0.05

A metric fails when it exceeds ``baseline * (1 + tolerance) +
grace``.  The per-call costs sit in the tens-to-hundreds of
nanoseconds, where 5% is below timer and scheduler noise on shared CI
runners, so a small absolute grace (default 200 ns) keeps the gate
meaningful without flapping: a real regression — an extra dict lookup,
an accidental allocation on the disabled path — costs far more than
the grace, while run-to-run jitter costs less.

Exit status: 0 = within budget (or no baseline section to compare),
1 = regression, 2 = bad invocation.
"""

from __future__ import annotations

import argparse
import json
import sys

#: Disabled-path metrics the gate protects (the hot ones).
GATED_METRICS = (
    "noop_span_ns",
    "add_event_disabled_ns",
    "counter_inc_ns",
)


def load_observability(path: str) -> dict:
    with open(path) as f:
        doc = json.load(f)
    section = doc.get("observability", {})
    if not isinstance(section, dict):
        raise ValueError(f"{path}: 'observability' must be an object")
    return section


def check(
    baseline: dict, current: dict, tolerance: float, grace_ns: float
) -> list[str]:
    """Regression messages for every gated metric over budget."""
    problems: list[str] = []
    for name in GATED_METRICS:
        base = baseline.get(name)
        cur = current.get(name)
        if base is None or cur is None:
            continue
        limit = base * (1.0 + tolerance) + grace_ns
        if cur > limit:
            problems.append(
                f"{name}: {cur:.1f} ns > limit {limit:.1f} ns "
                f"(baseline {base:.1f} ns, tolerance {tolerance:.0%} "
                f"+ {grace_ns:.0f} ns grace)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True,
                        help="committed BENCH_harness.json")
    parser.add_argument("--current", required=True,
                        help="freshly produced BENCH_harness.json")
    parser.add_argument("--tolerance", type=float, default=0.05,
                        help="allowed relative growth (default 0.05)")
    parser.add_argument("--grace-ns", type=float, default=200.0,
                        help="absolute noise allowance per metric (ns)")
    args = parser.parse_args(argv)

    try:
        baseline = load_observability(args.baseline)
        current = load_observability(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if not baseline:
        print(
            f"{args.baseline}: no observability baseline yet; gate skipped"
        )
        return 0
    if not current:
        print(f"error: {args.current} has no observability section",
              file=sys.stderr)
        return 1

    problems = check(baseline, current, args.tolerance, args.grace_ns)
    for name in GATED_METRICS:
        if name in baseline and name in current:
            print(
                f"{name}: baseline {baseline[name]:.1f} ns -> "
                f"current {current[name]:.1f} ns"
            )
    if problems:
        print("observability overhead regression:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("observability overhead within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
