"""Extension (§V related work, Zhou et al. [50]): hierarchical
overlapped tiling — independent outer overlapped tiles running an inner
blocked wavefront over sub-tiles.

The paper names this approach as the closest prior work and suggests it
"could be used to automate the schedules investigated here"; this bench
places it on the paper's own axes: does it land in the OT performance
class while avoiding the inner redundancy?"""

from repro.bench import SeriesData, format_series, time_variant
from repro.machine import MAGNY_COURS, SANDY_BRIDGE
from repro.schedules import Variant


def hierarchical_comparison():
    # Outer tile 32: big enough that a non-hierarchical intra-tile
    # schedule spills the per-thread cache — where the inner wavefront
    # earns its keep.
    lines = {
        "Baseline: P>=Box": Variant("series", "P>=Box", "CLO"),
        "Blocked WF-CLO-8: P<Box": Variant(
            "blocked_wavefront", "P<Box", "CLO", tile_size=8
        ),
        "Basic-Sched OT-32: P<Box": Variant(
            "overlapped", "P<Box", "CLO", tile_size=32, intra_tile="basic"
        ),
        "Shift-Fuse OT-16: P<Box": Variant(
            "overlapped", "P<Box", "CLO", tile_size=16, intra_tile="shift_fuse"
        ),
        "Hier-WF8 OT-32: P<Box": Variant(
            "overlapped", "P<Box", "CLO", tile_size=32,
            intra_tile="wavefront", inner_tile_size=8,
        ),
    }
    out = {}
    for machine in (MAGNY_COURS, SANDY_BRIDGE):
        threads = [1, machine.cores // 2, machine.cores]
        data = SeriesData(
            title=f"Hierarchical overlapped tiling on {machine.name} (N=128)",
            xlabel="threads",
            ylabel="time (s)",
            x=threads,
        )
        for label, v in lines.items():
            data.add_line(
                label, [time_variant(v, machine, t, 128).time_s for t in threads]
            )
        out[machine.name] = data
    return out


def test_extension_hierarchical(benchmark, save_result):
    results = benchmark(hierarchical_comparison)
    text = "".join(format_series(d) for d in results.values())
    save_result("extension_hierarchical", text)

    for name, data in results.items():
        base = data.lines["Baseline: P>=Box"][-1]
        wf = data.lines["Blocked WF-CLO-8: P<Box"][-1]
        ot32 = data.lines["Basic-Sched OT-32: P<Box"][-1]
        ot16 = data.lines["Shift-Fuse OT-16: P<Box"][-1]
        hier = data.lines["Hier-WF8 OT-32: P<Box"][-1]
        # Hierarchical tiling lands in the OT class: far below the
        # baseline and the whole-box wavefront, close to the best OT.
        assert hier < 0.5 * base, name
        assert hier < wf, name
        assert hier < 2.0 * ot16, name
        # And it rescues the big outer tile that plain OT-32 loses to
        # cache spill (the inner wavefront keeps reuse sub-tile-sized).
        assert hier <= ot32 * 1.001, name
