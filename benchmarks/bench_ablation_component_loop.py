"""Ablation: component loop placement (CLO vs CLI).

The paper prunes overlapped-CLI because "the untiled component loop on
the inside variants were slower than the component loop on the outside
variants" (§IV-E) — with the [x,y,z,c] layout, CLI streams all five
components' stencil windows concurrently, 5x-ing the reuse window."""

from repro.analysis import variant_traffic
from repro.bench import format_table, time_variant
from repro.machine import MAGNY_COURS
from repro.schedules import Variant

MB = 2**20


def clo_vs_cli():
    rows = []
    for category, tile in (("series", None), ("shift_fuse", None),
                           ("blocked_wavefront", 16)):
        for cl in ("CLO", "CLI"):
            kwargs = {"tile_size": tile} if tile else {}
            v = Variant(category, "P>=Box" if not tile else "P<Box", cl, **kwargs)
            r = time_variant(v, MAGNY_COURS, 24, 128)
            rows.append(
                {
                    "category": category,
                    "component_loop": cl,
                    "time_s": r.time_s,
                    "traffic_MB/box": variant_traffic(v, 128).dram_bytes(
                        MAGNY_COURS.cache_per_thread_bytes(24)
                    )
                    / MB,
                }
            )
    return rows


def test_ablation_component_loop(benchmark, save_result):
    rows = benchmark(clo_vs_cli)
    save_result(
        "ablation_component_loop",
        format_table("Ablation: CLO vs CLI at N=128 (magny_cours, 24T)", rows),
    )
    by = {(r["category"], r["component_loop"]): r for r in rows}
    # Baseline: CLI clearly loses — five components' stencil windows
    # stream together and the velocity copy adds traffic (the paper's
    # pruning rationale for untiled CLI).
    assert by[("series", "CLI")]["time_s"] > 1.1 * by[("series", "CLO")]["time_s"]
    # The CLI penalty is a traffic penalty, not a flop penalty.
    assert (
        by[("series", "CLI")]["traffic_MB/box"]
        > by[("series", "CLO")]["traffic_MB/box"]
    )
    # Fused: the model resolves CLO's velocity rereads against CLI's
    # fat windows as near-neutral (within 15% either way); the paper's
    # measured CLO edge there came from unit-stride vectorization
    # effects below byte-level modelling (see EXPERIMENTS.md).
    sf_gap = (
        by[("shift_fuse", "CLI")]["time_s"]
        / by[("shift_fuse", "CLO")]["time_s"]
    )
    assert 0.85 < sf_gap < 1.15
    # Tiled: windows shrink to tile size, so CLI is viable there (the
    # figures do show Blocked WF-CLI winning on the Intel machines).
    wf_gap = (
        by[("blocked_wavefront", "CLI")]["time_s"]
        / by[("blocked_wavefront", "CLO")]["time_s"]
    )
    assert wf_gap < 1.2
