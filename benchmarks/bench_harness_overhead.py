"""Execution-substrate overhead: figure-suite wall time and hit rates.

Times one cold pass (every substrate cache cleared) and one warm pass
of the paper's figure suite (Figs. 1-4, 9-12 + Table I), runs a real
threaded schedule to exercise the scratch arena, and writes the numbers
to ``BENCH_harness.json`` at the repo root — the start of the perf
trajectory for the harness itself.

Runs standalone (``python benchmarks/bench_harness_overhead.py``) or
under pytest.
"""

from __future__ import annotations

import json
import pathlib
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_harness.json"

#: Figure-suite wall time of the growth seed (commit e29a7db) measured
#: on this container: ``pytest benchmarks/bench_fig*.py`` before the
#: arena/caching substrate existed.
SEED_SUITE_WALL_S = 85.5

#: The same command with the substrate in place (same container, same
#: day) — the before/after pair for the perf trajectory.
PYTEST_SUITE_WALL_S = 19.6

#: Cold fig9 wall seconds recorded on this container immediately before
#: the vectorized fast path, workload/phase memoization, and analytic
#: tile counting landed.  Frozen: this anchor must never be re-measured,
#: it is the denominator of the fast-path speedup gate (>= 5x required,
#: ~10x targeted; see ``check_overhead_regression.py --fig9-min-speedup``).
FIG9_FROZEN_COLD_S = 6.63


def _clear_all_caches() -> None:
    from repro.box.copier import clear_copier_cache
    from repro.cluster.halo import clear_halo_cache
    from repro.machine.simulator import clear_phase_cost_cache
    from repro.machine.workload import clear_workload_cache
    from repro.util import clear_arena, reset_perf

    clear_workload_cache()
    clear_phase_cost_cache()
    clear_copier_cache()
    clear_halo_cache()
    clear_arena()
    reset_perf()


def _run_figure_suite() -> dict[str, float]:
    """One pass over every figure generator; per-figure seconds."""
    from repro.bench import (
        fig1_ghost_ratio,
        fig9_best_by_box_size,
        scaling_figure,
        schedule_figure,
        table1,
    )

    out: dict[str, float] = {}
    passes = [
        ("fig1", fig1_ghost_ratio),
        ("fig2", lambda: scaling_figure("fig2")),
        ("fig3", lambda: scaling_figure("fig3")),
        ("fig4", lambda: scaling_figure("fig4")),
        ("table1", table1),
        ("fig9", fig9_best_by_box_size),
        ("fig10", lambda: schedule_figure("fig10")),
        ("fig11", lambda: schedule_figure("fig11")),
        ("fig12", lambda: schedule_figure("fig12")),
    ]
    for name, fn in passes:
        start = time.perf_counter()
        fn()
        out[name] = time.perf_counter() - start
    return out


def _run_arena_probe() -> None:
    """A real threaded schedule execution, arena enabled."""
    from repro.box import LevelData
    from repro.exemplar import ExemplarProblem
    from repro.parallel import run_schedule_parallel
    from repro.schedules import Variant

    problem = ExemplarProblem(domain_cells=(16, 16, 16), box_size=8)
    phi0 = problem.make_phi0()
    # A second field over the same layout re-uses the cached exchange plan.
    other = LevelData(phi0.layout, ncomp=phi0.ncomp, ghost=phi0.ghost)
    other.exchange()
    for variant in (
        Variant("series", "P>=Box", "CLO"),
        Variant("overlapped", "P<Box", "CLO", tile_size=4, intra_tile="basic"),
    ):
        run_schedule_parallel(variant, phi0, 4, arena=True)
    # An independently constructed but content-equal layout: the plan
    # cache is keyed on layout *content*, so this run reuses the plan
    # built above (the old identity keys missed here).
    clone = ExemplarProblem(domain_cells=(16, 16, 16), box_size=8)
    clone.make_phi0().exchange()


def _engine_probe() -> None:
    """Touch both engines so every cache family records real traffic."""
    from repro.machine import (
        SANDY_BRIDGE,
        build_workload,
        engine_mode,
        estimate_workload,
        simulate_workload,
    )
    from repro.schedules import Variant

    wl = build_workload(
        Variant("blocked_wavefront", "P<Box", "CLO", tile_size=8), 16,
        (32, 32, 32),
    )
    for _ in range(2):
        simulate_workload(wl, SANDY_BRIDGE, 2)
        with engine_mode("fast"):
            estimate_workload(wl, SANDY_BRIDGE, 2)


def _fig9_fast_path() -> dict:
    """Cold fig9 under each engine mode vs the frozen pre-fast-path anchor.

    Every substrate cache is cleared before each timing, so the number
    includes workload construction, tile counting, and phase costing
    from scratch — the same work the frozen anchor paid.
    """
    from repro.bench import fig9_best_by_box_size
    from repro.machine import engine_mode

    out: dict = {"frozen_cold_s": FIG9_FROZEN_COLD_S}
    for mode in ("exact", "fast"):
        _clear_all_caches()
        with engine_mode(mode):
            t0 = time.perf_counter()
            fig9_best_by_box_size()
            dt = time.perf_counter() - t0
        out[f"cold_{mode}_s"] = round(dt, 4)
        out[f"speedup_{mode}_vs_frozen"] = round(FIG9_FROZEN_COLD_S / dt, 1)
    return out


def _obs_overhead() -> dict[str, float]:
    """Per-call cost of the observability hooks, in nanoseconds.

    The numbers that matter are the *disabled* ones: every execution
    layer calls ``span()``/``add_event()`` unconditionally, so their
    no-tracer fast path is what benchmark runs pay.  Best-of-repeats
    to shed scheduler noise; the regression gate
    (``benchmarks/check_overhead_regression.py``) compares these
    against the committed baseline.
    """
    from repro.obs import span, tracing
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import add_event, tracing_enabled

    n = 50_000

    def best_per_call_ns(fn, repeats: int = 5) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter_ns()
            fn()
            best = min(best, time.perf_counter_ns() - t0)
        return best / n

    def loop_baseline() -> None:
        for _ in range(n):
            pass

    def loop_span() -> None:
        for _ in range(n):
            with span("bench.obs", i=1):
                pass

    def loop_event() -> None:
        for _ in range(n):
            add_event("bench.obs", i=1)

    reg = MetricsRegistry()

    def loop_counter() -> None:
        for _ in range(n):
            reg.counter_inc("bench.obs")

    assert not tracing_enabled()
    baseline_ns = best_per_call_ns(loop_baseline)
    noop_span_ns = best_per_call_ns(loop_span)
    disabled_event_ns = best_per_call_ns(loop_event)
    with tracing():
        traced_span_ns = best_per_call_ns(loop_span, repeats=3)
    counter_inc_ns = best_per_call_ns(loop_counter)
    return {
        "loop_baseline_ns": round(baseline_ns, 1),
        "noop_span_ns": round(noop_span_ns, 1),
        "add_event_disabled_ns": round(disabled_event_ns, 1),
        "traced_span_ns": round(traced_span_ns, 1),
        "counter_inc_ns": round(counter_inc_ns, 1),
    }


def _serve_overhead() -> dict:
    """Serving-layer tax: the fig2 grid direct vs through ``repro.serve``.

    Routed as one batch job — one queue hop, one ticket settle — which
    is how a caller would serve a whole figure.  Both paths run warm
    (the direct pass above already primed every cache) and best-of-
    repeats sheds scheduler noise at this millisecond scale.  The
    acceptance bar (``check_overhead_regression.py``): served within
    5% of direct, plus a small absolute grace for timer noise.

    The shard measurement routes the same grid point-by-point through
    two process shards — every point pays admission, a WAL-less lease,
    a pickle round-trip over the pipe, and a ticket settle.  Process
    isolation is allowed a wider bar (10% + 20 ms): it buys kill -9
    survival, and the children fork warm so the tax is pure transport.

    The adaptive measurement re-serves the same batch with the full
    overload-control loop armed — AIMD limiter, latency tracking, retry
    budgets, hedging — but *idle* (an unreachable SLO, no faults, no
    stragglers).  An idle limiter is pure bookkeeping per job: it must
    fit the same thin-front envelope as the plain served path (5% +
    10 ms), so turning adaptive control on costs nothing until it has
    overload to control.
    """
    from repro.bench.experiments import scaling_grid_points
    from repro.bench.runner import run_grid
    from repro.serve import AdaptiveConfig, JobService, serve_grid

    points = scaling_grid_points("fig2")
    run_grid(points)  # prime the caches both paths share
    repeats = 7

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    direct_s = best_of(lambda: run_grid(points))
    with JobService(workers=2, queue_limit=64) as svc:
        served_s = best_of(lambda: serve_grid(points, svc, batch=True))
    adaptive = AdaptiveConfig(
        slo_ms=3_600_000.0, retry_budget_ratio=0.5, hedge=True,
    )
    with JobService(
        workers=2, queue_limit=64, adaptive=adaptive,
    ) as svc:
        served_adaptive_s = best_of(
            lambda: serve_grid(points, svc, batch=True)
        )
        adaptive_stats = svc.stats()["adaptive"]
    with JobService(workers=2, queue_limit=64, shards=2) as svc:
        served_shards_s = best_of(
            lambda: serve_grid(points, svc, batch=False)
        )
    return {
        "grid_points": len(points),
        "direct_run_grid_s": round(direct_s, 6),
        "served_batch_s": round(served_s, 6),
        "overhead_ratio": round(served_s / direct_s, 4),
        "served_adaptive_s": round(served_adaptive_s, 6),
        "adaptive_overhead_ratio": round(served_adaptive_s / direct_s, 4),
        # The loop must have been armed yet idle: no backoffs, no
        # hedges, no budget spends — the measured tax is bookkeeping.
        "adaptive_idle": (
            adaptive_stats["limiter"]["backoffs"] == 0
            and adaptive_stats["hedges"]["launched"] == 0
            and all(
                b["spent"] == 0
                for b in adaptive_stats["retry_budgets"].values()
            )
        ),
        "served_shards_s": round(served_shards_s, 6),
        "shards_overhead_ratio": round(served_shards_s / direct_s, 4),
    }


def _cluster_overhead() -> dict:
    """Multi-node scaling tax: a ``ClusterPoint`` direct vs served.

    The served path builds the same decomposition + halo plan parent-
    side and routes only the per-distinct-box-count engine evaluations
    through the queue/breaker/shard machinery, so the tax is one queue
    hop plus one ticket settle per rank shape.  Same bar as the shard
    path (``check_overhead_regression.py``): served within 10% of
    direct, plus a 20 ms absolute grace.
    """
    from repro.cluster import GEMINI, ClusterPoint
    from repro.machine import MAGNY_COURS
    from repro.schedules import Variant
    from repro.serve import JobService, JobSpec

    point = ClusterPoint(
        Variant("series", "P>=Box", "CLO"),
        MAGNY_COURS,
        GEMINI,
        nodes=16,
        box_size=16,
        domain_cells=(64, 64, 64),
    )
    point.evaluate()  # prime the halo-plan and engine caches
    repeats = 7

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    direct_s = best_of(point.evaluate)

    def served(svc) -> None:
        out = svc.submit(JobSpec("cluster", point, label="bench.cluster"))
        outcome = out.result(timeout=30.0)
        assert outcome.status == "ok", outcome

    with JobService(workers=2, queue_limit=64) as svc:
        served_s = best_of(lambda: served(svc))
    return {
        "nodes": point.nodes,
        "direct_step_s": round(direct_s, 6),
        "served_step_s": round(served_s, 6),
        "overhead_ratio": round(served_s / direct_s, 4),
    }


def _memo_overhead() -> dict:
    """Memo-path tax and payoff: the fig2 grid cold vs 100%-hit warm.

    Cold clears every substrate cache per repeat and serves into a fresh
    in-memory :class:`MemoStore`, so the number is the full miss path:
    canonical key, grid evaluation from scratch, result encode + put.
    The bar is the usual thin-front envelope against an equally cold
    direct ``run_grid``: within 5% + 10 ms.

    Warm re-serves the identical grid against the populated store — a
    100% hit rate, so the job collapses to key + decode — and must come
    back at least 5x faster than cold with a bitwise-identical grid
    hash (``check_overhead_regression.py --memo-min-speedup``).
    """
    from repro.bench.experiments import scaling_grid_points
    from repro.bench.runner import run_grid
    from repro.serve import JobService, serve_grid

    points = scaling_grid_points("fig2")
    cold_repeats = 3

    def best_cold(fn) -> float:
        best = float("inf")
        for _ in range(cold_repeats):
            _clear_all_caches()
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
        return best

    direct_cold_s = best_cold(lambda: run_grid(points))

    served_cold_s = float("inf")
    gr_cold = None
    for _ in range(cold_repeats):
        with JobService(workers=2, queue_limit=64, memo=True) as svc:
            _clear_all_caches()
            t0 = time.perf_counter()
            gr_cold = serve_grid(points, svc, batch=True)
            served_cold_s = min(served_cold_s, time.perf_counter() - t0)

    with JobService(workers=2, queue_limit=64, memo=True) as svc:
        serve_grid(points, svc, batch=True)  # populate the store
        best = float("inf")
        gr_warm = None
        for _ in range(7):
            t0 = time.perf_counter()
            gr_warm = serve_grid(points, svc, batch=True)
            best = min(best, time.perf_counter() - t0)
        served_warm_s = best
        memo_stats = svc.stats()["memo"]

    return {
        "grid_points": len(points),
        "direct_cold_s": round(direct_cold_s, 6),
        "served_cold_s": round(served_cold_s, 6),
        "cold_overhead_ratio": round(served_cold_s / direct_cold_s, 4),
        "served_warm_s": round(served_warm_s, 6),
        "warm_speedup": round(served_cold_s / served_warm_s, 1),
        "warm_hits": memo_stats["hits"],
        "warm_misses": memo_stats["misses"],
        "bitwise_equal": gr_cold.grid_hash == gr_warm.grid_hash,
    }


def collect() -> dict:
    from repro.util.perf import perf, publish_cache_gauges

    _clear_all_caches()
    t0 = time.perf_counter()
    cold_figures = _run_figure_suite()
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    _run_figure_suite()
    warm_s = time.perf_counter() - t0

    _run_arena_probe()
    _engine_probe()
    # Before the hit-rate read-out: gives the halo-plan cache traffic.
    cluster = _cluster_overhead()

    p = perf()
    # Also sets cache.<family>.hit_rate gauges on the default registry,
    # so a --metrics snapshot taken after a run carries the same numbers.
    hit_rates = publish_cache_gauges()
    report = {
        "seed": {
            "suite_wall_s": SEED_SUITE_WALL_S,
            "note": "pytest benchmarks/bench_fig*.py at the growth seed",
        },
        "current": {
            "pytest_suite_wall_s": PYTEST_SUITE_WALL_S,
            "cold_suite_s": round(cold_s, 3),
            "warm_suite_s": round(warm_s, 3),
            "per_figure_cold_s": {k: round(v, 3) for k, v in cold_figures.items()},
        },
        "speedup_pytest_suite_vs_seed": round(
            SEED_SUITE_WALL_S / PYTEST_SUITE_WALL_S, 2
        ),
        "speedup_cold_vs_seed": round(SEED_SUITE_WALL_S / cold_s, 2),
        "hit_rates": {k: round(v, 4) for k, v in sorted(hit_rates.items())},
        "arena": {
            "hits": p.get("arena.hits"),
            "misses": p.get("arena.misses"),
            "bytes_reused": p.get("arena.bytes_reused"),
        },
        "observability": _obs_overhead(),
        "serve": _serve_overhead(),
        "cluster": cluster,
        # Last two: both clear every cache per timing, so they cannot
        # run before the hit-rate read-out above.
        "fig9_fast_path": _fig9_fast_path(),
        "memo": _memo_overhead(),
    }
    return report


def test_harness_overhead():
    report = collect()
    OUT_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    # The caches must actually be doing the work: the warm pass is far
    # cheaper than the cold pass, and every substrate layer records hits.
    assert report["current"]["warm_suite_s"] < report["current"]["cold_suite_s"]
    assert report["hit_rates"]["workload_cache"] > 0
    assert report["hit_rates"]["phase_cache"] > 0
    assert report["hit_rates"]["copier_cache"] > 0
    assert report["hit_rates"]["arena"] > 0
    # Canonical content keys must beat the identity keys they replaced
    # (phase cost was 0.54, exchange plans 0.50 before structure_key).
    assert report["hit_rates"]["phase_cache"] > 0.54, report["hit_rates"]
    assert report["hit_rates"]["copier_cache"] > 0.50, report["hit_rates"]
    # The fast-path gate: cold fig9 at least 5x faster than the frozen
    # pre-fast-path anchor, in BOTH engine modes (the exact engine gains
    # from phase/workload memoization alone).
    fig9 = report["fig9_fast_path"]
    assert fig9["speedup_exact_vs_frozen"] >= 5.0, fig9
    assert fig9["speedup_fast_vs_frozen"] >= 5.0, fig9
    # Disabled observability must stay near-free.  These are generous
    # absolute ceilings (machine-independent sanity, not the regression
    # gate — CI compares against the committed baseline).
    obs = report["observability"]
    assert obs["noop_span_ns"] < 5_000
    assert obs["add_event_disabled_ns"] < 5_000
    assert obs["counter_inc_ns"] < 10_000
    assert obs["traced_span_ns"] < 100_000
    # The serving layer must stay a thin front: routing the fig2 grid
    # through repro.serve within 5% of direct run_grid, plus a 10 ms
    # absolute grace (the grid itself is ~ms-scale warm, where a single
    # scheduler hiccup exceeds any sane relative bar).
    serve = report["serve"]
    assert serve["served_batch_s"] <= (
        serve["direct_run_grid_s"] * 1.05 + 0.010
    ), serve
    # An armed-but-idle adaptive loop (limiter + budgets + hedging with
    # nothing to do) pays the same thin-front bar as the plain path.
    assert serve["served_adaptive_s"] <= (
        serve["direct_run_grid_s"] * 1.05 + 0.010
    ), serve
    assert serve["adaptive_idle"], serve
    # Process isolation gets a wider bar — 10% + 20 ms — covering the
    # per-point pickle/pipe round-trips through two shards.
    assert serve["served_shards_s"] <= (
        serve["direct_run_grid_s"] * 1.10 + 0.020
    ), serve
    # The cluster job kind pays the same thin-front bar as the shard
    # path: served multi-node step within 10% + 20 ms of direct.
    cluster = report["cluster"]
    assert cluster["served_step_s"] <= (
        cluster["direct_step_s"] * 1.10 + 0.020
    ), cluster
    # The halo-plan cache must record real traffic once cluster jobs run.
    assert report["hit_rates"]["halo_cache"] > 0, report["hit_rates"]
    # Memo path: the cold miss leg pays the thin-front envelope against
    # an equally cold direct run, the 100%-hit warm leg repays at least
    # 5x, and the cached grid is bitwise-identical to the computed one.
    memo = report["memo"]
    assert memo["served_cold_s"] <= (
        memo["direct_cold_s"] * 1.05 + 0.010
    ), memo
    assert memo["warm_speedup"] >= 5.0, memo
    assert memo["warm_misses"] == 1 and memo["warm_hits"] >= 7, memo
    assert memo["bitwise_equal"], memo


if __name__ == "__main__":
    test_harness_overhead()
    print(f"wrote {OUT_PATH}")
