"""Roofline placement of every schedule category (analysis artifact).

Not a paper figure, but the paper's §VI reasoning is roofline reasoning:
N=16 sits under the compute roof, the N=128 baseline slides under the
bandwidth roof, and the locality schedules raise arithmetic intensity
until the compute roof binds again.  This bench tabulates exactly that."""

from repro.analysis import variant_box_flops, variant_traffic
from repro.bench import format_table, time_variant
from repro.machine import MAGNY_COURS, arithmetic_intensity, roofline_gflops
from repro.schedules import Variant

VARIANTS = {
    "Baseline": Variant("series", "P>=Box", "CLO"),
    "Shift-Fuse": Variant("shift_fuse", "P>=Box", "CLO"),
    "Blocked WF-16": Variant("blocked_wavefront", "P<Box", "CLO", tile_size=16),
    "Shift-Fuse OT-8": Variant(
        "overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse"
    ),
}


def roofline_table(n=128, threads=24):
    machine = MAGNY_COURS
    cache = machine.cache_per_thread_bytes(threads)
    rows = []
    for label, v in VARIANTS.items():
        flops = variant_box_flops(v, n).total
        dram = variant_traffic(v, n).dram_bytes(cache)
        ai = arithmetic_intensity(flops, dram)
        attainable = roofline_gflops(machine, ai, threads)
        r = time_variant(v, machine, threads, n)
        rows.append(
            {
                "schedule": label,
                "AI_flops_per_byte": ai,
                "attainable_gflops": attainable,
                "achieved_gflops": r.gflops,
                "bound": "compute"
                if attainable
                >= machine.thread_compute_rate(threads) * threads / 1e9 * 0.999
                else "bandwidth",
            }
        )
    return rows


def test_roofline_placement(benchmark, save_result):
    rows = benchmark(roofline_table)
    save_result(
        "roofline",
        format_table("Roofline placement at N=128, magny_cours, 24T", rows),
    )
    by = {r["schedule"]: r for r in rows}
    # Arithmetic intensity rises along the schedule ladder.
    assert (
        by["Baseline"]["AI_flops_per_byte"]
        < by["Shift-Fuse"]["AI_flops_per_byte"]
        < by["Blocked WF-16"]["AI_flops_per_byte"]
        < by["Shift-Fuse OT-8"]["AI_flops_per_byte"]
    )
    # The baseline is bandwidth-bound; the best OT is compute-bound.
    assert by["Baseline"]["bound"] == "bandwidth"
    assert by["Shift-Fuse OT-8"]["bound"] == "compute"
    # Achieved never exceeds attainable (the simulator respects physics).
    for r in rows:
        assert r["achieved_gflops"] <= r["attainable_gflops"] * 1.001
