"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables/figures, prints
it, saves it under ``benchmarks/results/``, and asserts the paper's
qualitative shape (who wins, where curves flatten) — absolute times are
a simulated machine's, not the authors' testbed's.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def save_result(results_dir):
    """Persist a rendered table/series under benchmarks/results/."""

    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text)
        print()
        print(text)

    return _save
