"""Real wall-clock of the NumPy schedule executors (sanity layer).

These time the *actual* numerical kernels on this container at a small
box size.  They exist to keep the functional layer honest (every
variant really computes the kernel) — the scaling study itself runs on
the machine model, because interpreted-loop relative timings do not
transfer to compiled code (the repro band's "interpreted loops defeat
the point").
"""

import numpy as np
import pytest

from repro.exemplar import random_initial_data, reference_kernel
from repro.schedules import Variant, make_executor

N = 24
VARIANTS = [
    Variant("series", "P>=Box", "CLO"),
    Variant("series", "P>=Box", "CLI"),
    Variant("shift_fuse", "P>=Box", "CLI"),
    Variant("blocked_wavefront", "P<Box", "CLI", tile_size=8),
    Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="basic"),
    Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse"),
]


@pytest.fixture(scope="module")
def phi_g():
    return random_initial_data((N + 4,) * 3, seed=42)


@pytest.fixture(scope="module")
def ref(phi_g):
    return reference_kernel(phi_g)


@pytest.mark.parametrize("variant", VARIANTS, ids=lambda v: v.short_name)
def test_kernel_walltime(benchmark, variant, phi_g, ref):
    ex = make_executor(variant, dim=3, ncomp=5)
    out = benchmark(ex.run_fresh, phi_g)
    assert np.array_equal(out, ref)


def test_reference_kernel_walltime(benchmark, phi_g, ref):
    out = benchmark(reference_kernel, phi_g)
    assert np.array_equal(out, ref)
