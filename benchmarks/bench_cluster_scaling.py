"""Distributed step cost: the paper's motivating tradeoff, quantified.

The paper's §I argument chain: MPI parallelization prefers larger boxes
(less ghost exchange), but large boxes break on-node scaling under the
baseline schedule — and the new schedules fix that.  This bench runs
the cluster model (simulated nodes + interconnect + real copier-derived
exchange volumes) across box sizes and node counts."""

from repro.bench import SeriesData, format_series, format_table
from repro.machine import GEMINI, MAGNY_COURS, ClusterSpec, step_cost
from repro.schedules import Variant

DOMAIN = (256, 256, 256)
BASE = Variant("series", "P>=Box", "CLO")
OT = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse")


def box_size_table(nodes=4):
    cluster = ClusterSpec(MAGNY_COURS, GEMINI, nodes)
    rows = []
    for n in (16, 32, 64):
        b = step_cost(cluster, BASE, n, DOMAIN)
        o = step_cost(cluster, OT, n, DOMAIN)
        rows.append(
            {
                "box": n,
                "exchange_s": b.exchange_s,
                "baseline_total_s": b.total_s,
                "ot_total_s": o.total_s,
                "exchange_frac_ot": o.exchange_fraction,
            }
        )
    return rows


def strong_scaling(box=32):
    data = SeriesData(
        title=f"Strong scaling across nodes (N={box}, {DOMAIN} cells, "
        "magny_cours + gemini)",
        xlabel="nodes",
        ylabel="step time (s)",
        x=[1, 2, 4, 8],
    )
    for label, v in (("Baseline", BASE), ("Shift-Fuse OT-8", OT)):
        ys = []
        for nodes in data.x:
            cluster = ClusterSpec(MAGNY_COURS, GEMINI, nodes)
            ys.append(step_cost(cluster, v, box, DOMAIN).total_s)
        data.add_line(label, ys)
    return data


def test_cluster_box_size_tradeoff(benchmark, save_result):
    rows = benchmark(box_size_table)
    save_result(
        "cluster_box_size",
        format_table("Per-step cost vs box size (4 nodes)", rows),
    )
    # Exchange time falls monotonically with box size (Fig. 1's point).
    ex = [r["exchange_s"] for r in rows]
    assert ex[0] > ex[1] > ex[2]
    # Under the baseline the large box is NOT the total-time winner...
    base_total = {r["box"]: r["baseline_total_s"] for r in rows}
    assert base_total[64] > base_total[16]
    # ...under the OT schedule it is (or ties within 5%).
    ot_total = {r["box"]: r["ot_total_s"] for r in rows}
    assert ot_total[64] <= 1.05 * min(ot_total.values())


def test_cluster_strong_scaling(benchmark, save_result):
    data = benchmark(strong_scaling)
    save_result("cluster_strong_scaling", format_series(data))
    for label, ys in data.lines.items():
        # More nodes never slower; OT scales well to 8 nodes.
        assert all(b <= a * 1.02 for a, b in zip(ys, ys[1:])), label
    ot = data.lines["Shift-Fuse OT-8"]
    assert ot[0] / ot[-1] > 0.6 * 8
