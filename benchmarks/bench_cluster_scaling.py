"""Distributed step cost: the paper's motivating tradeoff, quantified.

The paper's §I argument chain: MPI parallelization prefers larger boxes
(less ghost exchange), but large boxes break on-node scaling under the
baseline schedule — and the new schedules fix that.  This bench runs
the cluster model (simulated nodes + interconnect + real copier-derived
exchange volumes via :mod:`repro.cluster.halo`) across box sizes and
node counts, plus the full per-rank weak/strong sweeps whose winning
on-node variant flips with scale."""

from repro.bench import SeriesData, format_series, format_table
from repro.cluster import (
    DEFAULT_VARIANTS,
    GEMINI,
    HDR,
    ClusterSpec,
    step_cost,
)
from repro.cluster import strong_scaling as strong_sweep
from repro.cluster import weak_scaling as weak_sweep
from repro.machine import MAGNY_COURS
from repro.schedules import Variant

DOMAIN = (256, 256, 256)
BASE = Variant("series", "P>=Box", "CLO")
OT = Variant("overlapped", "P<Box", "CLO", tile_size=8, intra_tile="shift_fuse")


def box_size_table(nodes=4):
    cluster = ClusterSpec(MAGNY_COURS, GEMINI, nodes)
    rows = []
    for n in (16, 32, 64):
        b = step_cost(cluster, BASE, n, DOMAIN)
        o = step_cost(cluster, OT, n, DOMAIN)
        rows.append(
            {
                "box": n,
                "exchange_s": b.exchange_s,
                "baseline_total_s": b.total_s,
                "ot_total_s": o.total_s,
                "exchange_frac_ot": o.exchange_fraction,
            }
        )
    return rows


def strong_scaling(box=32):
    data = SeriesData(
        title=f"Strong scaling across nodes (N={box}, {DOMAIN} cells, "
        "magny_cours + gemini)",
        xlabel="nodes",
        ylabel="step time (s)",
        x=[1, 2, 4, 8],
    )
    for label, v in (("Baseline", BASE), ("Shift-Fuse OT-8", OT)):
        ys = []
        for nodes in data.x:
            cluster = ClusterSpec(MAGNY_COURS, GEMINI, nodes)
            ys.append(step_cost(cluster, v, box, DOMAIN).total_s)
        data.add_line(label, ys)
    return data


def test_cluster_box_size_tradeoff(benchmark, save_result):
    rows = benchmark(box_size_table)
    save_result(
        "cluster_box_size",
        format_table("Per-step cost vs box size (4 nodes)", rows),
    )
    # Exchange time falls monotonically with box size (Fig. 1's point).
    ex = [r["exchange_s"] for r in rows]
    assert ex[0] > ex[1] > ex[2]
    # Under the baseline the large box is NOT the total-time winner...
    base_total = {r["box"]: r["baseline_total_s"] for r in rows}
    assert base_total[64] > base_total[16]
    # ...under the OT schedule it is (or ties within 5%).
    ot_total = {r["box"]: r["ot_total_s"] for r in rows}
    assert ot_total[64] <= 1.05 * min(ot_total.values())


def test_cluster_strong_scaling(benchmark, save_result):
    data = benchmark(strong_scaling)
    save_result("cluster_strong_scaling", format_series(data))
    for label, ys in data.lines.items():
        # More nodes never slower; OT scales well to 8 nodes.
        assert all(b <= a * 1.02 for a, b in zip(ys, ys[1:])), label
    ot = data.lines["Shift-Fuse OT-8"]
    assert ot[0] / ot[-1] > 0.6 * 8


def test_weak_scaling_variant_crossover(benchmark, save_result):
    """The best on-node schedule flips with node count and fabric.

    Constant work per node (8 boxes of 16^3): on the Gemini-class
    fabric the bulk-synchronous fusion schedule wins small runs but the
    overlapped-tile schedule takes over as exchange grows; on an
    HDR-class fabric the exchange never dominates and the ranking stays
    put — the paper's claim that the right schedule depends on the
    machine *and* the scale."""
    counts = (1, 4, 16, 64)

    def sweep():
        return {
            "gemini": weak_sweep(
                counts, DEFAULT_VARIANTS, machine=MAGNY_COURS,
                interconnect=GEMINI,
            ),
            "hdr": weak_sweep(
                counts, DEFAULT_VARIANTS, machine=MAGNY_COURS,
                interconnect=HDR,
            ),
        }

    sweeps = benchmark(sweep)
    table = [
        {
            "interconnect": fabric,
            "nodes": row["nodes"],
            "best": row["best"],
            "best_step_ms": round(
                row["variants"][row["best"]]["step_s"] * 1e3, 3
            ),
            "exchange_frac": round(
                row["variants"][row["best"]]["exchange_fraction"], 3
            ),
        }
        for fabric, rows in sweeps.items()
        for row in rows
    ]
    save_result(
        "cluster_weak_crossover",
        format_table("Weak scaling: best variant vs nodes and fabric", table),
    )
    gemini_best = [r["best"] for r in sweeps["gemini"]]
    hdr_best = [r["best"] for r in sweeps["hdr"]]
    # The winner changes with node count on the latency-bound fabric...
    assert len(set(gemini_best)) > 1, gemini_best
    # ...and the two fabrics disagree somewhere: interconnect matters.
    assert gemini_best != hdr_best, (gemini_best, hdr_best)
    # Exchange fraction grows along the gemini weak sweep.
    fracs = [
        max(v["exchange_fraction"] for v in row["variants"].values())
        for row in sweeps["gemini"]
    ]
    assert fracs[-1] > fracs[0]


def test_strong_scaling_attribution(benchmark, save_result):
    """Strong scaling to 256 nodes with compute/exchange/imbalance split.

    The fixed 1536-box domain runs out of parallelism per rank: the
    P>=Box baseline's efficiency collapses once ranks hold fewer boxes
    than threads, while the P<Box overlapped schedule keeps scaling —
    the crossover the node-level task graph exists to expose."""
    counts = (1, 4, 16, 64, 256)

    def sweep():
        return strong_sweep(
            counts, DEFAULT_VARIANTS, machine=MAGNY_COURS,
            interconnect=GEMINI,
        )

    rows = benchmark(sweep)
    table = [
        {
            "nodes": row["nodes"],
            "best": row["best"],
            **{
                f"{k}_ms": round(row["variants"][row["best"]][k] * 1e3, 3)
                for k in ("step_s", "compute_s", "exchange_s", "imbalance_s")
            },
            "efficiency": round(
                row["variants"][row["best"]]["efficiency"], 3
            ),
        }
        for row in rows
    ]
    save_result(
        "cluster_strong_attribution",
        format_table("Strong scaling attribution (best variant)", table),
    )
    # The winner flips along the sweep (series/shift_fuse small, OT big).
    bests = [r["best"] for r in rows]
    assert len(set(bests)) > 1, bests
    # Efficiency is sane everywhere and the attribution adds up.
    for row in rows:
        for v in row["variants"].values():
            assert v["efficiency"] <= 1.0 + 1e-12
            total = v["compute_s"] + v["exchange_s"] + v["imbalance_s"]
            assert abs(total - v["step_s"]) <= 1e-12 * max(v["step_s"], 1e-30)
