"""Shared shape assertions for the scaling-figure benchmarks.

These encode the paper's qualitative findings; a benchmark passes when
the simulated machine reproduces them, regardless of absolute times.
"""

from __future__ import annotations

from repro.bench import SeriesData

__all__ = [
    "assert_near_ideal_scaling",
    "assert_flattens",
    "scaling_at",
    "final_time",
]


def final_time(data: SeriesData, label: str) -> float:
    return data.lines[label][-1]


def scaling_at(data: SeriesData, label: str, threads: int) -> float:
    """Speedup of a line at ``threads`` relative to its 1-thread point."""
    i = data.x.index(threads)
    ys = data.lines[label]
    return ys[0] / ys[i]


def assert_near_ideal_scaling(
    data: SeriesData, label: str, threads: int, efficiency: float = 0.7
) -> None:
    """The line speeds up by at least ``efficiency * threads``."""
    s = scaling_at(data, label, threads)
    assert s >= efficiency * threads, (
        f"{label}: speedup {s:.1f}x at {threads} threads "
        f"(needed >= {efficiency * threads:.1f}x)"
    )


def assert_flattens(
    data: SeriesData, label: str, after_threads: int, tolerance: float = 1.6
) -> None:
    """Beyond ``after_threads`` the line improves less than ``tolerance``x."""
    i = data.x.index(after_threads)
    ys = data.lines[label]
    best_later = min(ys[i:])
    assert ys[i] / best_later < tolerance, (
        f"{label}: still improving {ys[i] / best_later:.2f}x past "
        f"{after_threads} threads"
    )
