"""Fig. 3: on the 20-core Ivy Bridge, the N=128 baseline ends up 2x
slower than N=16; Shift-Fuse OT-8 (parallelized over tiles) fixes the
scaling, and hyperthreading (40 threads) does not hurt it."""

from _shapes import assert_flattens, assert_near_ideal_scaling, final_time

from repro.bench import format_series, scaling_figure


def test_fig3_ivy_bridge(benchmark, save_result):
    data = benchmark(scaling_figure, "fig3")
    save_result("fig03_ivy_bridge_scaling", format_series(data))

    base16 = "Baseline: P>=Box, N=16"
    base128 = "Baseline: P>=Box, N=128"
    ot128 = "Shift-Fuse OT-8: P<Box, N=128"

    assert_near_ideal_scaling(data, base16, 20, efficiency=0.8)
    assert_flattens(data, base128, after_threads=8, tolerance=1.3)

    # Paper: N=128 baseline is ~2x slower than N=16 at full cores.
    i20 = data.x.index(20)
    ratio = data.lines[base128][i20] / data.lines[base16][i20]
    assert 1.7 < ratio < 4.5, f"N=128/N=16 ratio {ratio:.2f}"

    # OT-8 restores N=128 to N=16-level time.
    assert final_time(data, ot128) <= 1.25 * min(data.lines[base16])

    # Hyperthreading (20 -> 40 threads) does not slow OT down.
    i40 = data.x.index(40)
    assert data.lines[ot128][i40] <= data.lines[ot128][i20] * 1.05
