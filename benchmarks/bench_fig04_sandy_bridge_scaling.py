"""Fig. 4: on the 16-core Sandy Bridge, Shift-Fuse OT-16 lets the
N=128 box match the N=16 baseline's performance."""

from _shapes import assert_flattens, assert_near_ideal_scaling, final_time

from repro.bench import format_series, scaling_figure


def test_fig4_sandy_bridge(benchmark, save_result):
    data = benchmark(scaling_figure, "fig4")
    save_result("fig04_sandy_bridge_scaling", format_series(data))

    base16 = "Baseline: P>=Box, N=16"
    base128 = "Baseline: P>=Box, N=128"
    ot128 = "Shift-Fuse OT-16: P<Box, N=128"

    assert_near_ideal_scaling(data, base16, 16, efficiency=0.8)
    assert_flattens(data, base128, after_threads=8, tolerance=1.3)
    # N=128 baseline clearly worse than N=16 at full cores.
    i16 = data.x.index(16)
    assert data.lines[base128][i16] > 1.5 * data.lines[base16][i16]
    # OT-16 brings N=128 to N=16-level performance.
    assert final_time(data, ot128) <= 1.3 * final_time(data, base16)
