"""Fig. 2: on the 24-core AMD Magny-Cours (Cray XT6m), the baseline
parallelization over boxes scales perfectly at N=16 but collapses at
N=128; the shifted/fused/overlapped-tiled variant restores N=128 to
N=16-level performance."""

from _shapes import assert_flattens, assert_near_ideal_scaling, final_time

from repro.bench import format_series, scaling_figure


def test_fig2_magny_cours(benchmark, save_result):
    data = benchmark(scaling_figure, "fig2")
    save_result("fig02_magny_cours_scaling", format_series(data))

    base16 = "Baseline: P>=Box, N=16"
    base128 = "Baseline: P>=Box, N=128"
    ot128 = "Shift-Fuse OT-16: P>=Box, N=128"

    # N=16 baseline scales near-ideally to all 24 cores.
    assert_near_ideal_scaling(data, base16, 24, efficiency=0.8)
    # N=128 baseline stops scaling after a few threads (the paper's
    # "terrible" scaling: bandwidth saturates around 4 threads).
    assert_flattens(data, base128, after_threads=4, tolerance=1.3)
    assert scaling_at_most(data, base128, 24, 6.0)
    # The overlapped-tiling schedule at N=128 matches the N=16 baseline
    # within ~25% at full thread count — the paper's primary result.
    assert final_time(data, ot128) <= 1.25 * final_time(data, base16)
    # And beats the N=128 baseline by a large factor.
    assert final_time(data, base128) / final_time(data, ot128) > 3.0


def scaling_at_most(data, label, threads, bound):
    ys = data.lines[label]
    i = data.x.index(threads)
    return ys[0] / ys[i] <= bound
