"""Fig. 12: the seven schedules at N=128 on Sandy Bridge — the
overlapped tiled schedules exhibit excellent scalability and
performance."""

from _shapes import final_time, scaling_at

from repro.bench import format_series, schedule_figure


def test_fig12_sandy_bridge_n128(benchmark, save_result):
    data = benchmark(schedule_figure, "fig12")
    save_result("fig12_sandy_bridge_n128", format_series(data))

    ot_lines = [
        "Shift-Fuse OT-16: P<Box",
        "Basic-Sched OT-16: P<Box",
        "Shift-Fuse OT-8: P>=Box",
        "Basic-Sched OT-16: P>=Box",
    ]
    t_base = final_time(data, "Baseline: P>=Box")
    t_sf = final_time(data, "Shift-Fuse: P>=Box")
    t_ot = min(final_time(data, l) for l in ot_lines)
    # OT wins, baseline loses, shift-fuse in between.
    assert t_ot < t_sf < t_base
    # OT schedules scale well across all 16 cores.
    best_ot = min(ot_lines, key=lambda l: final_time(data, l))
    assert scaling_at(data, best_ot, 16) > 0.7 * 16
    # Baseline scales poorly (< 8x on 16 cores).
    assert scaling_at(data, "Baseline: P>=Box", 16) < 8.0
